//! The MINT conversion engine: Fig. 8's conversions built from blocks.
//!
//! Every conversion both *computes* the converted operand (verified
//! against the software conversions in `sparseflex-formats`) and *meters*
//! the building blocks it occupies, returning a [`ConversionReport`] that
//! the cost model and SAGE consume.

use crate::blocks::{
    small_op_cycles, ClusterCounter, DivModArray, MemController, PrefixSumUnit, SortingNetwork,
    E_SMALL_OP,
};
use crate::report::{BlockKind, ConversionReport};
use sparseflex_formats::{
    BsrMatrix, CooMatrix, CscMatrix, CsfTensor, CsrMatrix, DenseMatrix, DenseTensor3, FormatError,
    MatrixData, MatrixFormat, RlcMatrix, SparseMatrix, SparseTensor3, ZvcMatrix,
};

/// A configured MINT instance (one of each merged building block).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConversionEngine {
    /// Scan unit.
    pub prefix: PrefixSumUnit,
    /// Sorting network.
    pub sorter: SortingNetwork,
    /// Cluster counter.
    pub counter: ClusterCounter,
    /// Divide/mod array.
    pub divmod: DivModArray,
    /// Memory controller.
    pub memctrl: MemController,
}

impl Default for ConversionEngine {
    fn default() -> Self {
        ConversionEngine {
            prefix: PrefixSumUnit::mint_default(),
            sorter: SortingNetwork::mint_default(),
            counter: ClusterCounter::mint_default(),
            divmod: DivModArray::mint_default(),
            memctrl: MemController::mint_default(),
        }
    }
}

impl ConversionEngine {
    fn fresh_report(&self) -> ConversionReport {
        ConversionReport {
            fill_latency: self.prefix.latency()
                + self.sorter.latency()
                + self.divmod.latency()
                + self.memctrl.setup_latency,
            ..Default::default()
        }
    }

    /// CSR → CSC (Fig. 8c): histogram column ids (sort + cluster count),
    /// prefix-sum into `col_ptr`, then scatter values and row ids.
    pub fn csr_to_csc(&self, csr: &CsrMatrix) -> (CscMatrix, ConversionReport) {
        let mut rep = self.fresh_report();
        let nnz = csr.nnz() as u64;
        let cols = csr.cols();

        // Step 1: read chunks of col_ids.
        self.memctrl.transfer(nnz, &mut rep);
        // Step 2: sort each chunk.
        let col_ids_u64: Vec<u64> = csr.col_ids().iter().map(|&c| c as u64).collect();
        let sorted = self.sorter.sort_chunks(&col_ids_u64, &mut rep);
        // Step 3: cluster-count into the histogram.
        let hist = self.counter.count_into(&sorted, cols, &mut rep);
        // Step 4: accumulate histogram writes into scratchpad.
        self.memctrl.transfer(cols as u64, &mut rep);
        // Step 5: prefix sum over col_ptr.
        let col_ptr = self.prefix.scan_exclusive(&hist, &mut rep);
        // Steps 6-9: iterate CSR fields, scatter into CSC arrays. Each
        // nonzero costs a read of (value, col_id), a col_ptr read +
        // increment (adders), and a write of (value, row_id).
        self.memctrl.transfer(2 * nnz, &mut rep);
        rep.charge(
            BlockKind::Adders,
            small_op_cycles(nnz),
            nnz as f64 * E_SMALL_OP,
        );
        rep.charge(
            BlockKind::Comparators,
            small_op_cycles(nnz),
            nnz as f64 * E_SMALL_OP,
        );
        self.memctrl.transfer(2 * nnz, &mut rep);
        // Step 10: fix up and store col_ptr.
        self.memctrl.transfer(cols as u64 + 1, &mut rep);

        // Functional scatter (counting sort).
        let mut cursor: Vec<usize> = col_ptr.iter().map(|&x| x as usize).collect();
        let mut row_ids = vec![0usize; csr.nnz()];
        let mut values = vec![0.0; csr.nnz()];
        for (r, c, v) in csr.iter() {
            let slot = cursor[c];
            cursor[c] += 1;
            row_ids[slot] = r;
            values[slot] = v;
        }
        let mut col_ptr_usize: Vec<usize> = col_ptr.iter().map(|&x| x as usize).collect();
        col_ptr_usize.push(csr.nnz());
        rep.elements += nnz;
        let csc = CscMatrix::from_parts(csr.rows(), cols, col_ptr_usize, row_ids, values)
            .expect("counting sort yields valid CSC");
        (csc, rep)
    }

    /// RLC → COO (Fig. 8d): add one to each run, prefix-sum to recover
    /// flat positions, divide/mod by the row length for coordinates.
    pub fn rlc_to_coo(&self, rlc: &RlcMatrix) -> (CooMatrix, ConversionReport) {
        let mut rep = self.fresh_report();
        let n = rlc.stored_entries() as u64;
        let cols = rlc.cols() as u64;

        // Step 1: stream the RLC entries in.
        self.memctrl.transfer(2 * n, &mut rep);
        // Step 2: +1 offset per element.
        rep.charge(BlockKind::Adders, small_op_cycles(n), n as f64 * E_SMALL_OP);
        let steps: Vec<u64> = rlc.entries().iter().map(|e| e.zeros + 1).collect();
        // Step 3: prefix sum -> positions + 1.
        let prefix = self.prefix.scan(&steps, &mut rep);
        // Step 4: parallel divide/mod by K.
        let flats: Vec<u64> = prefix.iter().map(|p| p - 1).collect();
        let coords = self.divmod.div_mod(&flats, cols, &mut rep);
        // Extension-entry suppression (value == 0 emits nothing).
        rep.charge(
            BlockKind::Comparators,
            small_op_cycles(n),
            n as f64 * E_SMALL_OP,
        );
        // Step 5: store values + coordinates.
        let mut triplets = Vec::with_capacity(rlc.nnz());
        for (i, e) in rlc.entries().iter().enumerate() {
            if e.value != 0.0 {
                triplets.push((coords[i].0 as usize, coords[i].1 as usize, e.value));
            }
        }
        self.memctrl.transfer(3 * triplets.len() as u64, &mut rep);
        rep.elements += n;
        let coo = CooMatrix::from_sorted_triplets(rlc.rows(), rlc.cols(), triplets)
            .expect("RLC stream order is row-major");
        (coo, rep)
    }

    /// CSR → BSR (Fig. 8e): walk row blocks, find block columns with
    /// mod + comparators, scatter (padding zeros included), prefix-sum
    /// the block row pointer.
    pub fn csr_to_bsr(
        &self,
        csr: &CsrMatrix,
        br: usize,
        bc: usize,
    ) -> Result<(BsrMatrix, ConversionReport), FormatError> {
        let mut rep = self.fresh_report();
        let nnz = csr.nnz() as u64;
        // Step 1: read the CSR fields.
        self.memctrl
            .transfer(2 * nnz + csr.rows() as u64 + 1, &mut rep);
        // Step 2: block-position mods and initialization comparators.
        let cols_u64: Vec<u64> = csr.col_ids().iter().map(|&c| c as u64).collect();
        let _ = self.divmod.div_mod(&cols_u64, bc.max(1) as u64, &mut rep);
        rep.charge(
            BlockKind::Comparators,
            small_op_cycles(nnz),
            nnz as f64 * E_SMALL_OP,
        );

        let bsr = BsrMatrix::from_coo(&csr.to_coo(), br, bc)?;
        // Step 3: scatter values into padded block payloads (padding
        // zeros are written too — that is BSR's cost).
        self.memctrl.transfer(bsr.stored_values() as u64, &mut rep);
        // Counter tallies unique blocks per row block.
        rep.charge(
            BlockKind::ClusterCounter,
            self.counter.cycles(nnz),
            self.counter.energy(nnz),
        );
        // Step 5: prefix sum over the block row pointers.
        let nbr = bsr.num_block_rows() as u64;
        rep.charge(
            BlockKind::PrefixSum,
            self.prefix.cycles(nbr + 1),
            self.prefix.energy(nbr + 1),
        );
        self.memctrl
            .transfer(nbr + 1 + bsr.num_blocks() as u64, &mut rep);
        rep.elements += nnz;
        Ok((bsr, rep))
    }

    /// Dense tensor → CSF (Fig. 8f): nonzero scan + prefix sum for output
    /// slots, divide/mod chains for COO coordinates, then tree
    /// construction (comparators + pointer prefix sums).
    pub fn dense_to_csf(&self, dense: &DenseTensor3) -> (CsfTensor, ConversionReport) {
        let mut rep = self.fresh_report();
        let (dx, dy, dz) = dense.shape();
        let total = (dx * dy * dz) as u64;
        // Step 1: stream the dense tensor.
        self.memctrl.transfer(total, &mut rep);
        // Step 2: zero-check comparators + indicator prefix sum.
        rep.charge(
            BlockKind::Comparators,
            small_op_cycles(total),
            total as f64 * E_SMALL_OP,
        );
        rep.charge(
            BlockKind::PrefixSum,
            self.prefix.cycles(total),
            self.prefix.energy(total),
        );
        let coo = dense.to_coo();
        let nnz = coo.nnz() as u64;
        // Step 3: coordinate recovery: two divide/mod rounds per nonzero.
        let flats: Vec<u64> = coo
            .iter()
            .map(|(x, y, z, _)| ((x * dy + y) * dz + z) as u64)
            .collect();
        let first = self
            .divmod
            .div_mod(&flats, (dy * dz).max(1) as u64, &mut rep);
        let rests: Vec<u64> = first.iter().map(|&(_, rem)| rem).collect();
        let _ = self.divmod.div_mod(&rests, dz.max(1) as u64, &mut rep);
        // Step 4: store the COO intermediate.
        self.memctrl.transfer(4 * nnz, &mut rep);
        // Steps 5-6: tree construction — boundary comparators over the
        // sorted coordinates and prefix sums for the pointer arrays.
        rep.charge(
            BlockKind::Comparators,
            small_op_cycles(2 * nnz),
            2.0 * nnz as f64 * E_SMALL_OP,
        );
        let csf = CsfTensor::from_coo(&coo);
        let ptr_elems = (csf.num_slices() + csf.num_fibers() + 2) as u64;
        rep.charge(
            BlockKind::PrefixSum,
            self.prefix.cycles(ptr_elems),
            self.prefix.energy(ptr_elems),
        );
        // Step 7: store the CSF structure.
        let csf_elems = (2 * csf.nnz() + 2 * csf.num_fibers() + 2 * csf.num_slices() + 2) as u64;
        self.memctrl.transfer(csf_elems, &mut rep);
        rep.elements += total;
        (csf, rep)
    }

    /// Decode any matrix payload into the COO hub through the blocks.
    pub fn decode_to_coo(&self, data: &MatrixData) -> (CooMatrix, ConversionReport) {
        let mut rep = self.fresh_report();
        let coo = match data {
            MatrixData::Coo(c) => {
                // Pass-through: stream copy only.
                self.memctrl.transfer(3 * c.nnz() as u64, &mut rep);
                c.clone()
            }
            MatrixData::Rlc(r) => {
                let (coo, sub) = self.rlc_to_coo(r);
                rep.merge(&sub);
                return (coo, rep);
            }
            MatrixData::Dense(d) => {
                let total = (d.rows() * d.cols()) as u64;
                self.memctrl.transfer(total, &mut rep);
                rep.charge(
                    BlockKind::Comparators,
                    small_op_cycles(total),
                    total as f64 * E_SMALL_OP,
                );
                rep.charge(
                    BlockKind::PrefixSum,
                    self.prefix.cycles(total),
                    self.prefix.energy(total),
                );
                let coo = d.to_coo();
                let flats: Vec<u64> = coo
                    .iter()
                    .map(|(r, c, _)| (r * d.cols() + c) as u64)
                    .collect();
                let _ = self
                    .divmod
                    .div_mod(&flats, d.cols().max(1) as u64, &mut rep);
                self.memctrl.transfer(3 * coo.nnz() as u64, &mut rep);
                coo
            }
            MatrixData::Zvc(z) => {
                // Rank/select via prefix sums over mask popcounts.
                let words = z.mask().len() as u64;
                self.memctrl.transfer(words + z.nnz() as u64, &mut rep);
                rep.charge(
                    BlockKind::PrefixSum,
                    self.prefix.cycles(words),
                    self.prefix.energy(words),
                );
                let coo = z.to_coo();
                let flats: Vec<u64> = coo
                    .iter()
                    .map(|(r, c, _)| (r * z.cols() + c) as u64)
                    .collect();
                let _ = self
                    .divmod
                    .div_mod(&flats, z.cols().max(1) as u64, &mut rep);
                self.memctrl.transfer(3 * coo.nnz() as u64, &mut rep);
                coo
            }
            MatrixData::Csr(c) => {
                // Row-pointer expansion: adders walk row_ptr while values
                // and col ids stream through.
                let nnz = c.nnz() as u64;
                self.memctrl
                    .transfer(2 * nnz + c.rows() as u64 + 1, &mut rep);
                rep.charge(
                    BlockKind::Adders,
                    small_op_cycles(nnz),
                    nnz as f64 * E_SMALL_OP,
                );
                self.memctrl.transfer(3 * nnz, &mut rep);
                c.to_coo()
            }
            MatrixData::Csc(c) => {
                // Column-major to row-major: counting sort on row ids.
                let nnz = c.nnz() as u64;
                self.memctrl
                    .transfer(2 * nnz + c.cols() as u64 + 1, &mut rep);
                let row_u64: Vec<u64> = c.row_ids().iter().map(|&r| r as u64).collect();
                let sorted = self.sorter.sort_chunks(&row_u64, &mut rep);
                let hist = self.counter.count_into(&sorted, c.rows(), &mut rep);
                let _ = self.prefix.scan_exclusive(&hist, &mut rep);
                self.memctrl.transfer(3 * nnz, &mut rep);
                c.to_coo()
            }
            other => {
                // Structured formats (BSR/DIA/ELL): stream stored slots.
                let stored = match other {
                    MatrixData::Bsr(b) => b.stored_values() as u64,
                    MatrixData::Dia(d) => d.stored_values() as u64,
                    MatrixData::Ell(e) => e.stored_values() as u64,
                    _ => unreachable!("all unstructured formats handled above"),
                };
                self.memctrl.transfer(stored, &mut rep);
                rep.charge(
                    BlockKind::Comparators,
                    small_op_cycles(stored),
                    stored as f64 * E_SMALL_OP,
                );
                let coo = other.to_coo();
                self.memctrl.transfer(3 * coo.nnz() as u64, &mut rep);
                coo
            }
        };
        rep.elements += coo.nnz() as u64;
        (coo, rep)
    }

    /// Encode the COO hub into any matrix format through the blocks.
    pub fn encode_from_coo(
        &self,
        coo: &CooMatrix,
        target: &MatrixFormat,
    ) -> Result<(MatrixData, ConversionReport), FormatError> {
        let mut rep = self.fresh_report();
        let nnz = coo.nnz() as u64;
        let data = match *target {
            MatrixFormat::Coo => {
                self.memctrl.transfer(3 * nnz, &mut rep);
                MatrixData::Coo(coo.clone())
            }
            MatrixFormat::Csr => {
                // Histogram rows (already sorted) + prefix + stream write.
                let rows_u64: Vec<u64> = coo.row_ids().iter().map(|&r| r as u64).collect();
                let hist = self.counter.count_into(&rows_u64, coo.rows(), &mut rep);
                let _ = self.prefix.scan_exclusive(&hist, &mut rep);
                self.memctrl
                    .transfer(2 * nnz + coo.rows() as u64 + 1, &mut rep);
                MatrixData::Csr(CsrMatrix::from_coo(coo))
            }
            MatrixFormat::Csc => {
                let cols_u64: Vec<u64> = coo.col_ids().iter().map(|&c| c as u64).collect();
                let sorted = self.sorter.sort_chunks(&cols_u64, &mut rep);
                let hist = self.counter.count_into(&sorted, coo.cols(), &mut rep);
                let _ = self.prefix.scan_exclusive(&hist, &mut rep);
                rep.charge(
                    BlockKind::Adders,
                    small_op_cycles(nnz),
                    nnz as f64 * E_SMALL_OP,
                );
                self.memctrl
                    .transfer(2 * nnz + coo.cols() as u64 + 1, &mut rep);
                MatrixData::Csc(CscMatrix::from_coo(coo))
            }
            MatrixFormat::Dense => {
                // Zero-init + scatter.
                let total = (coo.rows() * coo.cols()) as u64;
                self.memctrl.transfer(total, &mut rep);
                self.memctrl.transfer(nnz, &mut rep);
                MatrixData::Dense(coo.clone().into_dense())
            }
            MatrixFormat::Rlc { run_bits } => {
                // Position deltas (adders) + run splitting (comparators).
                rep.charge(
                    BlockKind::Adders,
                    small_op_cycles(nnz),
                    nnz as f64 * E_SMALL_OP,
                );
                rep.charge(
                    BlockKind::Comparators,
                    small_op_cycles(nnz),
                    nnz as f64 * E_SMALL_OP,
                );
                let rlc = RlcMatrix::from_coo(coo, run_bits);
                self.memctrl
                    .transfer(2 * rlc.stored_entries() as u64, &mut rep);
                MatrixData::Rlc(rlc)
            }
            MatrixFormat::Zvc => {
                let zvc = ZvcMatrix::from_coo(coo);
                self.memctrl
                    .transfer(zvc.mask().len() as u64 + nnz, &mut rep);
                rep.charge(
                    BlockKind::Adders,
                    small_op_cycles(nnz),
                    nnz as f64 * E_SMALL_OP,
                );
                MatrixData::Zvc(zvc)
            }
            MatrixFormat::Bsr { br, bc } => {
                let csr = CsrMatrix::from_coo(coo);
                let (bsr, sub) = self.csr_to_bsr(&csr, br, bc)?;
                rep.merge(&sub);
                MatrixData::Bsr(bsr)
            }
            MatrixFormat::Dia | MatrixFormat::Ell => {
                // Structured scatter: offset arithmetic + padded writes.
                let data = MatrixData::encode(coo, target)?;
                let stored = match &data {
                    MatrixData::Dia(d) => d.stored_values() as u64,
                    MatrixData::Ell(e) => e.stored_values() as u64,
                    _ => unreachable!(),
                };
                rep.charge(
                    BlockKind::Adders,
                    small_op_cycles(nnz),
                    nnz as f64 * E_SMALL_OP,
                );
                self.memctrl.transfer(stored, &mut rep);
                data
            }
        };
        rep.elements += nnz;
        Ok((data, rep))
    }

    /// Generic any→any matrix conversion: direct fast paths where Fig. 8
    /// defines them, otherwise decode→COO→encode.
    pub fn convert_matrix(
        &self,
        data: &MatrixData,
        target: &MatrixFormat,
    ) -> Result<(MatrixData, ConversionReport), FormatError> {
        if data.format() == *target {
            // Identity: no conversion hardware touched.
            return Ok((data.clone(), ConversionReport::default()));
        }
        // Direct paths from Fig. 8.
        match (data, target) {
            (MatrixData::Csr(c), MatrixFormat::Csc) => {
                let (out, rep) = self.csr_to_csc(c);
                return Ok((MatrixData::Csc(out), rep));
            }
            (MatrixData::Csr(c), MatrixFormat::Bsr { br, bc }) => {
                let (out, rep) = self.csr_to_bsr(c, *br, *bc)?;
                return Ok((MatrixData::Bsr(out), rep));
            }
            (MatrixData::Rlc(r), MatrixFormat::Coo) => {
                let (out, rep) = self.rlc_to_coo(r);
                return Ok((MatrixData::Coo(out), rep));
            }
            _ => {}
        }
        let (coo, mut rep) = self.decode_to_coo(data);
        let (out, enc) = self.encode_from_coo(&coo, target)?;
        rep.merge(&enc);
        Ok((out, rep))
    }

    /// Decode any tensor payload into the COO hub through the blocks.
    pub fn decode_tensor_to_coo(
        &self,
        data: &sparseflex_formats::TensorData,
    ) -> (sparseflex_formats::CooTensor3, ConversionReport) {
        use sparseflex_formats::TensorData;
        let mut rep = self.fresh_report();
        let (dx, dy, dz) = data.as_sparse().shape();
        let total = (dx * dy * dz) as u64;
        let coo = match data {
            TensorData::Coo(c) => {
                self.memctrl.transfer(4 * c.nnz() as u64, &mut rep);
                c.clone()
            }
            TensorData::Dense(d) => {
                self.memctrl.transfer(total, &mut rep);
                rep.charge(
                    BlockKind::Comparators,
                    small_op_cycles(total),
                    total as f64 * E_SMALL_OP,
                );
                rep.charge(
                    BlockKind::PrefixSum,
                    self.prefix.cycles(total),
                    self.prefix.energy(total),
                );
                let coo = d.to_coo();
                let flats: Vec<u64> = coo
                    .iter()
                    .map(|(x, y, z, _)| ((x * dy + y) * dz + z) as u64)
                    .collect();
                let first = self
                    .divmod
                    .div_mod(&flats, ((dy * dz).max(1)) as u64, &mut rep);
                let rests: Vec<u64> = first.iter().map(|&(_, r)| r).collect();
                let _ = self.divmod.div_mod(&rests, dz.max(1) as u64, &mut rep);
                self.memctrl.transfer(4 * coo.nnz() as u64, &mut rep);
                coo
            }
            TensorData::Zvc(z) => {
                let words = z.mask().len() as u64;
                self.memctrl.transfer(words + z.nnz() as u64, &mut rep);
                rep.charge(
                    BlockKind::PrefixSum,
                    self.prefix.cycles(words),
                    self.prefix.energy(words),
                );
                let coo = z.to_coo();
                let _ = self.divmod.div_mod(
                    &coo.iter()
                        .map(|(x, y, zz, _)| ((x * dy + y) * dz + zz) as u64)
                        .collect::<Vec<_>>(),
                    ((dy * dz).max(1)) as u64,
                    &mut rep,
                );
                self.memctrl.transfer(4 * coo.nnz() as u64, &mut rep);
                coo
            }
            TensorData::Rlc(r) => {
                let n = r.stored_entries() as u64;
                self.memctrl.transfer(2 * n, &mut rep);
                rep.charge(BlockKind::Adders, small_op_cycles(n), n as f64 * E_SMALL_OP);
                rep.charge(
                    BlockKind::PrefixSum,
                    self.prefix.cycles(n),
                    self.prefix.energy(n),
                );
                let coo = r.to_coo();
                let flats: Vec<u64> = coo
                    .iter()
                    .map(|(x, y, z, _)| ((x * dy + y) * dz + z) as u64)
                    .collect();
                let first = self
                    .divmod
                    .div_mod(&flats, ((dy * dz).max(1)) as u64, &mut rep);
                let rests: Vec<u64> = first.iter().map(|&(_, rr)| rr).collect();
                let _ = self.divmod.div_mod(&rests, dz.max(1) as u64, &mut rep);
                self.memctrl.transfer(4 * coo.nnz() as u64, &mut rep);
                coo
            }
            TensorData::Csf(c) => {
                // Tree walk: pointer expansion with adders.
                let n = c.nnz() as u64;
                let meta = (c.num_slices() + c.num_fibers()) as u64 * 2 + 2;
                self.memctrl.transfer(2 * n + meta, &mut rep);
                rep.charge(BlockKind::Adders, small_op_cycles(n), n as f64 * E_SMALL_OP);
                self.memctrl.transfer(4 * n, &mut rep);
                c.to_coo()
            }
            TensorData::HiCoo(h) => {
                // Block-id reconstruction: multiply-add per nonzero.
                let n = h.nnz() as u64;
                self.memctrl.transfer(4 * n, &mut rep);
                rep.charge(
                    BlockKind::Adders,
                    small_op_cycles(3 * n),
                    3.0 * n as f64 * E_SMALL_OP,
                );
                self.memctrl.transfer(4 * n, &mut rep);
                h.to_coo()
            }
        };
        rep.elements += coo.nnz() as u64;
        (coo, rep)
    }

    /// Encode the COO tensor hub into any tensor format through the
    /// blocks.
    pub fn encode_tensor_from_coo(
        &self,
        coo: &sparseflex_formats::CooTensor3,
        target: &sparseflex_formats::TensorFormat,
    ) -> Result<(sparseflex_formats::TensorData, ConversionReport), FormatError> {
        use sparseflex_formats::{TensorData, TensorFormat};
        let mut rep = self.fresh_report();
        let n = coo.nnz() as u64;
        let (dx, dy, dz) = coo.shape();
        let data = match *target {
            TensorFormat::Coo => {
                self.memctrl.transfer(4 * n, &mut rep);
                TensorData::Coo(coo.clone())
            }
            TensorFormat::Csf => {
                // Tree construction: boundary comparators + pointer scans.
                rep.charge(
                    BlockKind::Comparators,
                    small_op_cycles(2 * n),
                    2.0 * n as f64 * E_SMALL_OP,
                );
                let csf = sparseflex_formats::CsfTensor::from_coo(coo);
                let ptrs = (csf.num_slices() + csf.num_fibers() + 2) as u64;
                rep.charge(
                    BlockKind::PrefixSum,
                    self.prefix.cycles(ptrs),
                    self.prefix.energy(ptrs),
                );
                self.memctrl.transfer(2 * n + 2 * ptrs, &mut rep);
                TensorData::Csf(csf)
            }
            TensorFormat::Dense => {
                let total = (dx * dy * dz) as u64;
                self.memctrl.transfer(total + n, &mut rep);
                TensorData::Dense(coo.clone().into_dense())
            }
            TensorFormat::Rlc { run_bits } => {
                rep.charge(BlockKind::Adders, small_op_cycles(n), n as f64 * E_SMALL_OP);
                let rlc = sparseflex_formats::RlcTensor3::from_coo(coo, run_bits);
                self.memctrl
                    .transfer(2 * rlc.stored_entries() as u64, &mut rep);
                TensorData::Rlc(rlc)
            }
            TensorFormat::Zvc => {
                let zvc = sparseflex_formats::ZvcTensor3::from_coo(coo);
                self.memctrl.transfer(zvc.mask().len() as u64 + n, &mut rep);
                rep.charge(BlockKind::Adders, small_op_cycles(n), n as f64 * E_SMALL_OP);
                TensorData::Zvc(zvc)
            }
            TensorFormat::HiCoo { block } => {
                // Block keys need divide/mod per coordinate.
                let flats: Vec<u64> = coo.x_ids().iter().map(|&x| x as u64).collect();
                let _ = self.divmod.div_mod(&flats, block.max(1) as u64, &mut rep);
                let h = sparseflex_formats::HiCooTensor::from_coo(coo, block)?;
                self.memctrl
                    .transfer((4 * h.num_blocks() + 4 * h.nnz()) as u64, &mut rep);
                TensorData::HiCoo(h)
            }
        };
        rep.elements += n;
        Ok((data, rep))
    }

    /// Generic any→any tensor conversion via the COO hub (identity is
    /// free), with the Fig. 8f direct path for Dense→CSF.
    pub fn convert_tensor(
        &self,
        data: &sparseflex_formats::TensorData,
        target: &sparseflex_formats::TensorFormat,
    ) -> Result<(sparseflex_formats::TensorData, ConversionReport), FormatError> {
        use sparseflex_formats::{TensorData, TensorFormat};
        if data.format() == *target {
            return Ok((data.clone(), ConversionReport::default()));
        }
        if let (TensorData::Dense(d), TensorFormat::Csf) = (data, target) {
            let (csf, rep) = self.dense_to_csf(d);
            return Ok((TensorData::Csf(csf), rep));
        }
        let (coo, mut rep) = self.decode_tensor_to_coo(data);
        let (out, enc) = self.encode_tensor_from_coo(&coo, target)?;
        rep.merge(&enc);
        Ok((out, rep))
    }

    /// Dense matrix → CSR through the blocks (the Fig. 10b benchmark
    /// conversion).
    pub fn dense_to_csr(&self, dense: &DenseMatrix) -> (CsrMatrix, ConversionReport) {
        let (coo, mut rep) = self.decode_to_coo(&MatrixData::Dense(dense.clone()));
        let (out, enc) = self
            .encode_from_coo(&coo, &MatrixFormat::Csr)
            .expect("CSR encode cannot fail");
        rep.merge(&enc);
        match out {
            MatrixData::Csr(c) => (c, rep),
            _ => unreachable!(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparseflex_formats::convert;
    use sparseflex_workloads::synth::random_matrix;

    fn engine() -> ConversionEngine {
        ConversionEngine::default()
    }

    fn fig8b() -> CooMatrix {
        CooMatrix::from_triplets(
            4,
            4,
            vec![
                (0, 1, 1.0),
                (0, 3, 2.0),
                (1, 1, 3.0),
                (2, 0, 4.0),
                (2, 3, 5.0),
                (3, 2, 6.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn csr_to_csc_matches_software_oracle() {
        let csr = CsrMatrix::from_coo(&fig8b());
        let (csc, rep) = engine().csr_to_csc(&csr);
        assert_eq!(csc, convert::csr_to_csc(&csr));
        assert!(rep.pipelined_cycles() > 0);
        assert!(rep.pipelined_cycles() <= rep.serialized_cycles());
        // All five pipeline stages of Fig. 8c were exercised.
        for kind in [
            BlockKind::Sorter,
            BlockKind::ClusterCounter,
            BlockKind::PrefixSum,
            BlockKind::MemController,
        ] {
            assert!(rep.block_cycles.contains_key(&kind), "missing {kind:?}");
        }
    }

    #[test]
    fn rlc_to_coo_matches_software_oracle() {
        let coo = fig8b();
        let rlc = RlcMatrix::from_coo(&coo, 4);
        let (out, rep) = engine().rlc_to_coo(&rlc);
        assert_eq!(out, coo);
        assert!(rep.block_cycles.contains_key(&BlockKind::Divider));
        assert!(rep.block_cycles.contains_key(&BlockKind::Modulo));
        assert!(rep.block_cycles.contains_key(&BlockKind::PrefixSum));
    }

    #[test]
    fn rlc_with_extension_entries_converts_exactly() {
        let coo = CooMatrix::from_triplets(2, 100, vec![(0, 0, 1.0), (1, 99, 2.0)]).unwrap();
        let rlc = RlcMatrix::from_coo(&coo, 3);
        let (out, _) = engine().rlc_to_coo(&rlc);
        assert_eq!(out, coo);
    }

    #[test]
    fn csr_to_bsr_matches_software_oracle() {
        let csr = CsrMatrix::from_coo(&fig8b());
        let (bsr, rep) = engine().csr_to_bsr(&csr, 2, 2).unwrap();
        assert_eq!(bsr, convert::csr_to_bsr(&csr, 2, 2).unwrap());
        assert!(rep.block_cycles.contains_key(&BlockKind::Modulo));
    }

    #[test]
    fn dense_to_csf_matches_software_oracle() {
        use sparseflex_formats::CooTensor3;
        let coo = CooTensor3::from_quads(
            4,
            4,
            4,
            vec![
                (0, 0, 0, 1.0),
                (0, 0, 1, 2.0),
                (1, 2, 2, 3.0),
                (3, 0, 3, 6.0),
            ],
        )
        .unwrap();
        let dense = coo.clone().into_dense();
        let (csf, rep) = engine().dense_to_csf(&dense);
        assert_eq!(csf, CsfTensor::from_coo(&coo));
        assert!(rep.block_cycles[&BlockKind::Comparators] > 0);
    }

    #[test]
    fn every_mcf_acf_pair_converts_exactly() {
        let coo = random_matrix(24, 30, 120, 7);
        let eng = engine();
        for src in MatrixFormat::mcf_set() {
            let data = MatrixData::encode(&coo, &src).unwrap();
            for dst in MatrixFormat::acf_set() {
                let (out, rep) = eng.convert_matrix(&data, &dst).unwrap();
                assert_eq!(out.format(), dst, "{src} -> {dst}");
                assert_eq!(out.to_coo(), coo, "{src} -> {dst} corrupted data");
                if src == dst {
                    assert_eq!(rep.pipelined_cycles(), 0, "identity must be free");
                } else {
                    assert!(
                        rep.pipelined_cycles() > 0,
                        "{src} -> {dst} must cost cycles"
                    );
                }
            }
        }
    }

    #[test]
    fn identity_conversion_is_free() {
        let coo = fig8b();
        let data = MatrixData::encode(&coo, &MatrixFormat::Csr).unwrap();
        let (out, rep) = engine().convert_matrix(&data, &MatrixFormat::Csr).unwrap();
        assert_eq!(out, data);
        assert_eq!(rep.total_energy(), 0.0);
        assert_eq!(rep.serialized_cycles(), 0);
    }

    #[test]
    fn dense_to_csr_pipeline() {
        let coo = random_matrix(16, 16, 40, 3);
        let dense = coo.clone().into_dense();
        let (csr, rep) = engine().dense_to_csr(&dense);
        assert_eq!(csr, convert::dense_to_csr(&dense));
        // Dense decode must stream the whole matrix through the memctrl.
        assert!(rep.block_cycles[&BlockKind::MemController] >= (16 * 16) / 16);
    }

    #[test]
    fn bigger_matrices_cost_more_cycles() {
        let eng = engine();
        let small = random_matrix(20, 20, 40, 1);
        let large = random_matrix(20, 20, 300, 2);
        let (_, rep_s) = eng.csr_to_csc(&CsrMatrix::from_coo(&small));
        let (_, rep_l) = eng.csr_to_csc(&CsrMatrix::from_coo(&large));
        assert!(rep_l.pipelined_cycles() > rep_s.pipelined_cycles());
        assert!(rep_l.total_energy() > rep_s.total_energy());
    }

    #[test]
    fn structured_targets_work_via_generic_path() {
        let coo = random_matrix(12, 12, 30, 9);
        let data = MatrixData::encode(&coo, &MatrixFormat::Zvc).unwrap();
        let eng = engine();
        for dst in [
            MatrixFormat::Bsr { br: 3, bc: 3 },
            MatrixFormat::Dia,
            MatrixFormat::Ell,
        ] {
            let (out, rep) = eng.convert_matrix(&data, &dst).unwrap();
            assert_eq!(out.to_coo(), coo, "ZVC -> {dst}");
            assert!(rep.pipelined_cycles() > 0);
        }
    }
}

//! Format-generic kernel entry points.
//!
//! Each kernel is written **once** against the fiber-stream traversal of
//! `sparseflex_formats::traverse`
//! ([`RowMajorStream`](sparseflex_formats::traverse::RowMajorStream) /
//! [`FiberStream3`](sparseflex_formats::traverse::FiberStream3)),
//! so it consumes an operand in *any* of the paper's compression formats
//! (Fig. 3) without pre-conversion — the software analogue of the paper's
//! flexible-ACF accelerator. Dispatch keeps the tuned concrete
//! implementations as specializations: when the operand arrives in the
//! format a fast path was written for (CSR SpMV/SpMM, COO Alg. 1, CSF
//! fiber kernels, CSC-stationary SpMM), that path runs; every other format
//! flows through the generic stream consumer, which produces identical
//! results.
//!
//! All entry points validate operand shapes and return
//! [`KernelError::ShapeMismatch`] instead of panicking.
//!
//! The `*_via_stream` variants force the generic stream path even when a
//! fast path exists; they exist so tests can pin `generic == specialized`
//! and benches can price the dispatch/stream overhead (the `kernels_stream`
//! criterion group).

use crate::error::{check_dim, KernelError};
use crate::lanes::{axpy, dot_indexed, fold_scaled, scatter_axpy};
use crate::parallel::{split_at_ranges, worker_count};
use crate::{
    mttkrp as mttkrp_mod, spgemm as spgemm_mod, spmm as spmm_mod, spmv as spmv_mod,
    spttm as spttm_mod,
};
use sparseflex_formats::{
    ArenaPool, CsrMatrix, DenseMatrix, DenseTensor3, MatrixData, RowMajorStream, SparseMatrix,
    SparseTensor3, StreamArena, TensorData, Value,
};
use std::borrow::Cow;
use std::ops::Range;

// ---------------------------------------------------------------------------
// SpMV
// ---------------------------------------------------------------------------

/// SpMV over any matrix format: `y = A * x`.
///
/// CSR operands take the tuned row loop; every other format streams its
/// row fibers through the same accumulation.
pub fn spmv(a: &MatrixData, x: &[Value]) -> Result<Vec<Value>, KernelError> {
    check_dim("spmv", "A cols vs x len", a.cols(), x.len())?;
    match a {
        MatrixData::Csr(m) => Ok(spmv_mod::csr(m, x)),
        _ => spmv_via_stream(a, x),
    }
}

/// SpMV forced through the generic fiber stream (no fast-path dispatch).
pub fn spmv_via_stream(a: &MatrixData, x: &[Value]) -> Result<Vec<Value>, KernelError> {
    spmv_via_stream_in(&mut StreamArena::new(), a, x)
}

/// [`spmv_via_stream`] drawing traversal scratch from the caller's arena:
/// with a warm arena, the only allocation left is the output vector.
pub fn spmv_via_stream_in(
    arena: &mut StreamArena,
    a: &MatrixData,
    x: &[Value],
) -> Result<Vec<Value>, KernelError> {
    check_dim("spmv", "A cols vs x len", a.cols(), x.len())?;
    let mut y = vec![0.0; a.rows()];
    a.row_stream()
        .for_each_fiber_in(arena, &mut |r, cols, vals| {
            y[r] = dot_indexed(cols, vals, x);
        });
    Ok(y)
}

// ---------------------------------------------------------------------------
// SpMM (sparse A, dense B)
// ---------------------------------------------------------------------------

/// SpMM over any matrix format: `O = A * B` with dense `B`.
///
/// CSR takes the row loop, COO takes the paper's Algorithm 1 nnz stream;
/// every other format streams its row fibers — same accumulation order,
/// identical output.
pub fn spmm(a: &MatrixData, b: &DenseMatrix) -> Result<DenseMatrix, KernelError> {
    check_dim("spmm", "A cols vs B rows", a.cols(), b.rows())?;
    match a {
        MatrixData::Csr(m) => Ok(spmm_mod::csr_dense(m, b)),
        MatrixData::Coo(m) => Ok(spmm_mod::coo_dense(m, b)),
        _ => spmm_via_stream(a, b),
    }
}

/// SpMM forced through the generic fiber stream (no fast-path dispatch).
pub fn spmm_via_stream(a: &MatrixData, b: &DenseMatrix) -> Result<DenseMatrix, KernelError> {
    spmm_via_stream_in(&mut StreamArena::new(), a, b)
}

/// [`spmm_via_stream`] drawing traversal scratch from the caller's arena:
/// with a warm arena, the only allocation left is the output matrix.
pub fn spmm_via_stream_in(
    arena: &mut StreamArena,
    a: &MatrixData,
    b: &DenseMatrix,
) -> Result<DenseMatrix, KernelError> {
    spmm_from_stream_in(arena, a.rows(), a.cols(), a.row_stream(), b)
}

/// SpMM over **any** row-major fiber stream — including payloads that
/// are not [`MatrixData`] variants, such as the descriptor-encoded
/// [`CustomMatrix`](sparseflex_formats::CustomMatrix) open formats. The
/// operand's shape is passed explicitly because a bare stream carries
/// none.
pub fn spmm_from_stream(
    a_rows: usize,
    a_cols: usize,
    a: &dyn sparseflex_formats::RowMajorStream,
    b: &DenseMatrix,
) -> Result<DenseMatrix, KernelError> {
    spmm_from_stream_in(&mut StreamArena::new(), a_rows, a_cols, a, b)
}

/// [`spmm_from_stream`] drawing traversal scratch from the caller's arena.
pub fn spmm_from_stream_in(
    arena: &mut StreamArena,
    a_rows: usize,
    a_cols: usize,
    a: &dyn sparseflex_formats::RowMajorStream,
    b: &DenseMatrix,
) -> Result<DenseMatrix, KernelError> {
    check_dim("spmm", "A cols vs B rows", a_cols, b.rows())?;
    let n = b.cols();
    let mut o = DenseMatrix::zeros(a_rows, n);
    a.for_each_fiber_in(arena, &mut |r, cols, vals| {
        let orow = &mut o.data_mut()[r * n..(r + 1) * n];
        for (&c, &v) in cols.iter().zip(vals) {
            axpy(orow, b.row(c), v);
        }
    });
    Ok(o)
}

/// Multithreaded SpMM over **any** matrix format — the two-phase parallel
/// split over the generic stream.
///
/// Phase 1 cuts the rows into near-equal-nnz contiguous ranges with the
/// format's structure-only partitioner
/// ([`RowMajorStream::row_partition`]); phase 2 gives each scoped worker
/// its own disjoint output band and its own [`StreamArena`], streaming
/// only its range via [`RowMajorStream::for_each_fiber_range_in`]. Per-row
/// accumulation order is untouched, so the result is bit-for-bit equal to
/// [`spmm_via_stream`] (and [`spmm`]) for every format.
pub fn spmm_parallel(a: &MatrixData, b: &DenseMatrix) -> Result<DenseMatrix, KernelError> {
    spmm_parallel_in(&mut ArenaPool::new(), a, b)
}

/// [`spmm_parallel`] drawing each worker's arena from the caller's pool:
/// with a warm pool, the per-worker traversals allocate nothing in steady
/// state — PR 8's zero-alloc property, preserved per thread.
pub fn spmm_parallel_in(
    pool: &mut ArenaPool,
    a: &MatrixData,
    b: &DenseMatrix,
) -> Result<DenseMatrix, KernelError> {
    check_dim("spmm", "A cols vs B rows", a.cols(), b.rows())?;
    let n = b.cols();
    let stream = a.row_stream();
    let ranges = stream.row_partition(worker_count(a.rows()));
    let mut o = DenseMatrix::zeros(a.rows(), n);
    if ranges.len() <= 1 {
        let arena = &mut pool.slots(1)[0];
        stream.for_each_fiber_in(arena, &mut |r, cols, vals| {
            let orow = &mut o.data_mut()[r * n..(r + 1) * n];
            for (&c, &v) in cols.iter().zip(vals) {
                axpy(orow, b.row(c), v);
            }
        });
        return Ok(o);
    }
    let slices = split_at_ranges(o.data_mut(), &ranges, n);
    let arenas = pool.slots(ranges.len());
    std::thread::scope(|s| {
        for ((range, slice), arena) in ranges.iter().cloned().zip(slices).zip(arenas.iter_mut()) {
            s.spawn(move || {
                let r0 = range.start;
                stream.for_each_fiber_range_in(range, arena, &mut |r, cols, vals| {
                    let orow = &mut slice[(r - r0) * n..(r - r0 + 1) * n];
                    for (&c, &v) in cols.iter().zip(vals) {
                        axpy(orow, b.row(c), v);
                    }
                });
            });
        }
    });
    Ok(o)
}

/// SpMM with the sparse operand on the right: `O = A * B` with dense `A`
/// and `B` in any format.
///
/// CSC operands take the stationary-column fast path (Fig. 6b's
/// weight-stationary layout); every other format streams `B` row-major,
/// scattering each fiber against the matching dense column of `A`.
pub fn spmm_sparse_b(a: &DenseMatrix, b: &MatrixData) -> Result<DenseMatrix, KernelError> {
    check_dim("spmm", "A cols vs B rows", a.cols(), b.rows())?;
    match b {
        MatrixData::Csc(m) => Ok(spmm_mod::dense_csc(a, m)),
        _ => {
            let (m, n) = (a.rows(), b.cols());
            let mut o = DenseMatrix::zeros(m, n);
            b.row_stream().for_each_fiber(&mut |k, cols, vals| {
                for i in 0..m {
                    let aik = a.row(i)[k];
                    if aik == 0.0 {
                        continue;
                    }
                    let orow = &mut o.data_mut()[i * n..(i + 1) * n];
                    scatter_axpy(orow, cols, vals, aik);
                }
            });
            Ok(o)
        }
    }
}

// ---------------------------------------------------------------------------
// SpGEMM (sparse A, sparse B)
// ---------------------------------------------------------------------------

/// SpGEMM dataflow selector: which algorithm computes each output row.
///
/// Both produce **bit-for-bit identical** CSR output (the row-wise merge
/// replays Gustavson's exact per-element addition order); they differ in
/// scratch footprint and access pattern, which is what SAGE prices when
/// choosing one per workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpgemmAlgo {
    /// Gustavson's row algorithm: dense sparse-accumulator the width of
    /// `B`, O(1) scatter per partial product, one sort per output row.
    /// Wins when output rows are dense relative to `B`'s width.
    Gustavson,
    /// Row-wise product (*Maple*'s dataflow): k-way heap merge of the
    /// selected B-rows, O(row fan-out) scratch, O(log fan-out) per
    /// partial product. Wins at extreme sparsity / very wide `B`, where
    /// touching a `B`-cols-sized accumulator per row is the cost.
    RowWise,
}

/// Gustavson SpGEMM over any pair of matrix formats: `O = A * B` in CSR.
///
/// `A` streams its row fibers directly into the sparse accumulator; `B`
/// needs random row access, so a non-CSR `B` is materialized once via
/// [`csr_from_stream`](sparseflex_formats::csr_from_stream) (a single
/// stream pass — no COO hub round-trip).
pub fn spgemm(a: &MatrixData, b: &MatrixData) -> Result<CsrMatrix, KernelError> {
    spgemm_with(a, b, SpgemmAlgo::Gustavson)
}

/// Row-wise-product SpGEMM over any pair of matrix formats — identical
/// output to [`spgemm`], merge-based dataflow (see [`SpgemmAlgo`]).
pub fn spgemm_rowwise(a: &MatrixData, b: &MatrixData) -> Result<CsrMatrix, KernelError> {
    spgemm_with(a, b, SpgemmAlgo::RowWise)
}

/// SpGEMM over any pair of matrix formats with an explicit dataflow
/// choice — the entry point SAGE's dataflow pricing drives.
pub fn spgemm_with(
    a: &MatrixData,
    b: &MatrixData,
    algo: SpgemmAlgo,
) -> Result<CsrMatrix, KernelError> {
    check_dim("spgemm", "A cols vs B rows", a.cols(), b.rows())?;
    let b_csr = csr_view(b);
    if let MatrixData::Csr(m) = a {
        return Ok(match algo {
            SpgemmAlgo::Gustavson => spgemm_mod::csr_csr(m, &b_csr),
            SpgemmAlgo::RowWise => spgemm_mod::csr_csr_rowwise(m, &b_csr),
        });
    }
    let (rows, n) = (a.rows(), b.cols());
    let mut row_ptr = Vec::with_capacity(rows + 1);
    row_ptr.push(0usize);
    let mut col_ids = Vec::new();
    let mut values = Vec::new();
    match algo {
        SpgemmAlgo::Gustavson => {
            let mut scratch = spgemm_mod::Accumulator::new(n);
            a.row_stream().for_each_fiber(&mut |r, acols, avals| {
                while row_ptr.len() <= r {
                    row_ptr.push(values.len());
                }
                spgemm_mod::gustavson_row(
                    acols,
                    avals,
                    &b_csr,
                    &mut scratch,
                    &mut col_ids,
                    &mut values,
                );
            });
        }
        SpgemmAlgo::RowWise => {
            let mut heap: spgemm_mod::MergeHeap = Vec::new();
            a.row_stream().for_each_fiber(&mut |r, acols, avals| {
                while row_ptr.len() <= r {
                    row_ptr.push(values.len());
                }
                spgemm_mod::rowwise_row(acols, avals, &b_csr, &mut heap, &mut col_ids, &mut values);
            });
        }
    }
    while row_ptr.len() <= rows {
        row_ptr.push(values.len());
    }
    Ok(CsrMatrix::from_parts(rows, n, row_ptr, col_ids, values)
        .expect("both SpGEMM dataflows emit ordered valid CSR over an ordered stream"))
}

/// Row-parallel Gustavson SpGEMM over any pair of matrix formats —
/// see [`spgemm_parallel_with`].
pub fn spgemm_parallel(a: &MatrixData, b: &MatrixData) -> Result<CsrMatrix, KernelError> {
    spgemm_parallel_with(a, b, SpgemmAlgo::Gustavson)
}

/// Output-row-parallel SpGEMM over any pair of matrix formats, in either
/// dataflow.
///
/// `B` is materialized as CSR once (itself row-parallel via
/// [`csr_from_stream_parallel`] when not already CSR); `A`'s rows are then
/// cut by its structure-only partitioner and each scoped worker runs the
/// chosen per-row routine ([`SpgemmAlgo`]) over its own ranged stream with
/// private scratch and output buffers. A final offset-stitch concatenates
/// the bands. Both dataflows reuse the exact per-row routines of the
/// sequential [`spgemm_with`], so output is bit-for-bit identical for
/// every format pair.
pub fn spgemm_parallel_with(
    a: &MatrixData,
    b: &MatrixData,
    algo: SpgemmAlgo,
) -> Result<CsrMatrix, KernelError> {
    check_dim("spgemm", "A cols vs B rows", a.cols(), b.rows())?;
    let b_csr = csr_view_parallel(b);
    let (rows, n) = (a.rows(), b.cols());
    let stream = a.row_stream();
    let ranges = stream.row_partition(worker_count(rows));
    let bands: Vec<(Vec<usize>, Vec<usize>, Vec<Value>)> = if ranges.len() <= 1 {
        vec![spgemm_band(stream, 0..rows, &b_csr, algo)]
    } else {
        std::thread::scope(|s| {
            let handles: Vec<_> = ranges
                .iter()
                .cloned()
                .map(|range| {
                    let b_csr = &b_csr;
                    s.spawn(move || spgemm_band(stream, range, b_csr, algo))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("spgemm worker panicked"))
                .collect()
        })
    };
    Ok(stitch_bands(rows, n, bands))
}

/// One worker's share of the parallel SpGEMM: run the per-row routine over
/// a ranged stream of `A`, recording each output row's length for the
/// final stitch. Also the sequential body (one band covering all rows).
fn spgemm_band(
    stream: &dyn RowMajorStream,
    range: Range<usize>,
    b_csr: &CsrMatrix,
    algo: SpgemmAlgo,
) -> (Vec<usize>, Vec<usize>, Vec<Value>) {
    let mut arena = StreamArena::new();
    let mut row_lens = vec![0usize; range.len()];
    let mut col_ids = Vec::new();
    let mut values = Vec::new();
    let r0 = range.start;
    match algo {
        SpgemmAlgo::Gustavson => {
            let mut scratch = spgemm_mod::Accumulator::new(b_csr.cols());
            stream.for_each_fiber_range_in(range, &mut arena, &mut |r, acols, avals| {
                let before = values.len();
                spgemm_mod::gustavson_row(
                    acols,
                    avals,
                    b_csr,
                    &mut scratch,
                    &mut col_ids,
                    &mut values,
                );
                row_lens[r - r0] = values.len() - before;
            });
        }
        SpgemmAlgo::RowWise => {
            let mut heap: spgemm_mod::MergeHeap = Vec::new();
            stream.for_each_fiber_range_in(range, &mut arena, &mut |r, acols, avals| {
                let before = values.len();
                spgemm_mod::rowwise_row(acols, avals, b_csr, &mut heap, &mut col_ids, &mut values);
                row_lens[r - r0] = values.len() - before;
            });
        }
    }
    (row_lens, col_ids, values)
}

/// Offset-stitch: per-band row lengths become the global `row_ptr`, band
/// payloads concatenate in range order.
fn stitch_bands(
    rows: usize,
    cols: usize,
    bands: Vec<(Vec<usize>, Vec<usize>, Vec<Value>)>,
) -> CsrMatrix {
    let nnz: usize = bands.iter().map(|(_, c, _)| c.len()).sum();
    let mut row_ptr = Vec::with_capacity(rows + 1);
    row_ptr.push(0usize);
    let mut col_ids = Vec::with_capacity(nnz);
    let mut values = Vec::with_capacity(nnz);
    for (row_lens, cs, vs) in bands {
        for len in row_lens {
            row_ptr.push(row_ptr.last().unwrap() + len);
        }
        col_ids.extend_from_slice(&cs);
        values.extend_from_slice(&vs);
    }
    // Bands cover every row except when the operand had zero rows; pad the
    // pointer array either way (a no-op for covered rows).
    while row_ptr.len() <= rows {
        row_ptr.push(col_ids.len());
    }
    CsrMatrix::from_parts(rows, cols, row_ptr, col_ids, values)
        .expect("stitched bands form valid CSR")
}

/// Row-parallel stream→CSR materialization: partition the rows, let each
/// worker stream its range into private buffers, stitch. Bit-for-bit
/// identical to [`csr_from_stream`](sparseflex_formats::csr_from_stream)
/// for any format (the fibers and their order are the same; only which
/// thread copies them changes).
pub fn csr_from_stream_parallel(
    rows: usize,
    cols: usize,
    stream: &dyn RowMajorStream,
) -> CsrMatrix {
    let ranges = stream.row_partition(worker_count(rows));
    if ranges.len() <= 1 {
        return sparseflex_formats::csr_from_stream(rows, cols, stream);
    }
    let bands: Vec<(Vec<usize>, Vec<usize>, Vec<Value>)> = std::thread::scope(|s| {
        let handles: Vec<_> = ranges
            .iter()
            .cloned()
            .map(|range| {
                s.spawn(move || {
                    let mut arena = StreamArena::new();
                    let mut row_lens = vec![0usize; range.len()];
                    let mut col_ids = Vec::new();
                    let mut values = Vec::new();
                    let r0 = range.start;
                    stream.for_each_fiber_range_in(range, &mut arena, &mut |r, cs, vs| {
                        row_lens[r - r0] = cs.len();
                        col_ids.extend_from_slice(cs);
                        values.extend_from_slice(vs);
                    });
                    (row_lens, col_ids, values)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("stream worker panicked"))
            .collect()
    });
    stitch_bands(rows, cols, bands)
}

/// Borrow `m` as CSR when it already is, else materialize through the
/// fiber stream (shared with the accelerator runtimes).
fn csr_view(m: &MatrixData) -> Cow<'_, CsrMatrix> {
    sparseflex_formats::csr_cow(m)
}

/// [`csr_view`] with a row-parallel materialization for non-CSR operands.
fn csr_view_parallel(m: &MatrixData) -> Cow<'_, CsrMatrix> {
    match m {
        MatrixData::Csr(c) => Cow::Borrowed(c),
        other => Cow::Owned(csr_from_stream_parallel(
            other.rows(),
            other.cols(),
            other.row_stream(),
        )),
    }
}

// ---------------------------------------------------------------------------
// MTTKRP
// ---------------------------------------------------------------------------

/// MTTKRP over any 3-D tensor format:
/// `O[i][j] = Σ_{k,l} A[i][k][l] * B[k][j] * C[l][j]`.
///
/// COO and CSF operands take their tuned fast paths; every other format
/// streams its mode-z fibers through the CSF-style factored accumulation
/// (partial sum over `l` per fiber, then one scaling by `B[k][j]`).
pub fn mttkrp(
    a: &TensorData,
    b: &DenseMatrix,
    c: &DenseMatrix,
) -> Result<DenseMatrix, KernelError> {
    mttkrp_mod::check_factors(a.dim_y(), a.dim_z(), b, c)?;
    match a {
        TensorData::Coo(t) => Ok(mttkrp_mod::coo(t, b, c)),
        TensorData::Csf(t) => Ok(mttkrp_mod::csf(t, b, c)),
        _ => mttkrp_via_stream(a, b, c),
    }
}

/// MTTKRP forced through the generic fiber stream (no fast-path dispatch).
pub fn mttkrp_via_stream(
    a: &TensorData,
    b: &DenseMatrix,
    c: &DenseMatrix,
) -> Result<DenseMatrix, KernelError> {
    mttkrp_via_stream_in(&mut StreamArena::new(), a, b, c)
}

/// [`mttkrp_via_stream`] drawing both traversal scratch and the per-fiber
/// accumulator lane from the caller's arena: with a warm arena, the only
/// allocation left is the output matrix.
pub fn mttkrp_via_stream_in(
    arena: &mut StreamArena,
    a: &TensorData,
    b: &DenseMatrix,
    c: &DenseMatrix,
) -> Result<DenseMatrix, KernelError> {
    mttkrp_mod::check_factors(a.dim_y(), a.dim_z(), b, c)?;
    let j = b.cols();
    let mut o = DenseMatrix::zeros(a.dim_x(), j);
    // `acc` is reserved for stream *consumers*; traversals never touch it,
    // so taking it out for the duration of the walk is safe.
    let mut fiber_acc = std::mem::take(&mut arena.acc);
    fiber_acc.clear();
    fiber_acc.resize(j, 0.0);
    a.fiber_stream()
        .for_each_fiber_in(arena, &mut |i, k, zs, vals| {
            fiber_acc.iter_mut().for_each(|v| *v = 0.0);
            for (&l, &v) in zs.iter().zip(vals) {
                axpy(&mut fiber_acc, c.row(l), v);
            }
            let orow = &mut o.data_mut()[i * j..(i + 1) * j];
            fold_scaled(orow, &fiber_acc, b.row(k));
        });
    arena.acc = fiber_acc;
    Ok(o)
}

/// Multithreaded MTTKRP over any 3-D tensor format — the two-phase split
/// over the mode-z fiber stream.
///
/// Fiber-key ranges from
/// [`fiber_partition`](sparseflex_formats::FiberStream3::fiber_partition)
/// are aligned down to whole x slices (MTTKRP's output row is `x`, so a
/// slice split across workers would race); each worker then streams its
/// range with a private arena and accumulator lane into its disjoint
/// output band.
/// Bit-for-bit identical to [`mttkrp_via_stream`] (same per-fiber
/// accumulation, same order per output row).
pub fn mttkrp_parallel(
    a: &TensorData,
    b: &DenseMatrix,
    c: &DenseMatrix,
) -> Result<DenseMatrix, KernelError> {
    mttkrp_mod::check_factors(a.dim_y(), a.dim_z(), b, c)?;
    let (dx, dy) = (a.dim_x(), a.dim_y());
    let j = b.cols();
    let stream = a.fiber_stream();
    let mut ranges = stream.fiber_partition(worker_count(dx));
    align_ranges_to(&mut ranges, dy);
    if ranges.len() <= 1 {
        return mttkrp_via_stream(a, b, c);
    }
    let mut o = DenseMatrix::zeros(dx, j);
    let row_ranges: Vec<Range<usize>> = ranges.iter().map(|r| r.start / dy..r.end / dy).collect();
    let slices = split_at_ranges(o.data_mut(), &row_ranges, j);
    std::thread::scope(|s| {
        for (range, slice) in ranges.iter().cloned().zip(slices) {
            s.spawn(move || {
                let mut arena = StreamArena::new();
                let mut fiber_acc = vec![0.0; j];
                let x0 = range.start / dy;
                stream.for_each_fiber_range_in(range, &mut arena, &mut |i, k, zs, vals| {
                    fiber_acc.iter_mut().for_each(|v| *v = 0.0);
                    for (&l, &v) in zs.iter().zip(vals) {
                        axpy(&mut fiber_acc, c.row(l), v);
                    }
                    let orow = &mut slice[(i - x0) * j..(i - x0 + 1) * j];
                    fold_scaled(orow, &fiber_acc, b.row(k));
                });
            });
        }
    });
    Ok(o)
}

/// Round each range boundary down to a multiple of `unit`, merging ranges
/// that collapse — the alignment MTTKRP needs so every worker owns whole
/// x slices (`unit = dim_y` fiber keys per slice).
fn align_ranges_to(ranges: &mut Vec<Range<usize>>, unit: usize) {
    if unit <= 1 || ranges.is_empty() {
        return;
    }
    let end = ranges.last().unwrap().end;
    let mut bounds: Vec<usize> = ranges.iter().map(|r| r.start / unit * unit).collect();
    bounds.dedup();
    ranges.clear();
    for (i, &s) in bounds.iter().enumerate() {
        let e = if i + 1 < bounds.len() {
            bounds[i + 1]
        } else {
            end
        };
        if s < e {
            ranges.push(s..e);
        }
    }
}

// ---------------------------------------------------------------------------
// SpTTM
// ---------------------------------------------------------------------------

/// SpTTM over any 3-D tensor format:
/// `Y[x][y][j] = Σ_z A[x][y][z] * B[z][j]`.
///
/// COO and CSF operands take their tuned fast paths; every other format
/// streams its mode-z fibers through the CSF-style fiber-at-a-time
/// accumulation.
pub fn spttm(a: &TensorData, b: &DenseMatrix) -> Result<DenseTensor3, KernelError> {
    check_dim("spttm", "B rows vs tensor mode-3", a.dim_z(), b.rows())?;
    match a {
        TensorData::Coo(t) => Ok(spttm_mod::coo(t, b)),
        TensorData::Csf(t) => Ok(spttm_mod::csf(t, b)),
        _ => spttm_via_stream(a, b),
    }
}

/// SpTTM forced through the generic fiber stream (no fast-path dispatch).
pub fn spttm_via_stream(a: &TensorData, b: &DenseMatrix) -> Result<DenseTensor3, KernelError> {
    spttm_via_stream_in(&mut StreamArena::new(), a, b)
}

/// [`spttm_via_stream`] drawing both traversal scratch and the per-fiber
/// accumulator lane from the caller's arena: with a warm arena, the only
/// allocation left is the output tensor.
pub fn spttm_via_stream_in(
    arena: &mut StreamArena,
    a: &TensorData,
    b: &DenseMatrix,
) -> Result<DenseTensor3, KernelError> {
    check_dim("spttm", "B rows vs tensor mode-3", a.dim_z(), b.rows())?;
    let j = b.cols();
    let mut y = DenseTensor3::zeros(a.dim_x(), a.dim_y(), j);
    let mut acc = std::mem::take(&mut arena.acc);
    acc.clear();
    acc.resize(j, 0.0);
    a.fiber_stream()
        .for_each_fiber_in(arena, &mut |x, yy, zs, vals| {
            acc.iter_mut().for_each(|v| *v = 0.0);
            for (&z, &v) in zs.iter().zip(vals) {
                axpy(&mut acc, b.row(z), v);
            }
            for (jj, &av) in acc.iter().enumerate() {
                if av != 0.0 {
                    y.add_assign(x, yy, jj, av);
                }
            }
        });
    arena.acc = acc;
    Ok(y)
}

/// Multithreaded SpTTM over any 3-D tensor format — the two-phase split
/// over the mode-z fiber stream.
///
/// Each `(x, y)` fiber owns exactly output row `x * dim_y + y`, so the
/// fiber-key ranges from
/// [`fiber_partition`](sparseflex_formats::FiberStream3::fiber_partition)
/// are already disjoint in the output; workers stream their range with a
/// private arena and accumulator lane into their output band. Bit-for-bit
/// identical to [`spttm_via_stream`].
pub fn spttm_parallel(a: &TensorData, b: &DenseMatrix) -> Result<DenseTensor3, KernelError> {
    check_dim("spttm", "B rows vs tensor mode-3", a.dim_z(), b.rows())?;
    let (dx, dy) = (a.dim_x(), a.dim_y());
    let j = b.cols();
    let stream = a.fiber_stream();
    let ranges = stream.fiber_partition(worker_count(dx * dy));
    if ranges.len() <= 1 {
        return spttm_via_stream(a, b);
    }
    let mut y = DenseTensor3::zeros(dx, dy, j);
    let slices = split_at_ranges(y.data_mut(), &ranges, j);
    std::thread::scope(|s| {
        for (range, slice) in ranges.iter().cloned().zip(slices) {
            s.spawn(move || {
                let mut arena = StreamArena::new();
                let mut acc = vec![0.0; j];
                let k0 = range.start;
                stream.for_each_fiber_range_in(range, &mut arena, &mut |x, yy, zs, vals| {
                    acc.iter_mut().for_each(|v| *v = 0.0);
                    for (&z, &v) in zs.iter().zip(vals) {
                        axpy(&mut acc, b.row(z), v);
                    }
                    let key = x * dy + yy;
                    let orow = &mut slice[(key - k0) * j..(key - k0 + 1) * j];
                    for (jj, &av) in acc.iter().enumerate() {
                        if av != 0.0 {
                            orow[jj] += av;
                        }
                    }
                });
            });
        }
    });
    Ok(y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::gemm_naive;
    use sparseflex_formats::{CooMatrix, CooTensor3, MatrixFormat, TensorFormat};

    fn all_matrix_formats() -> Vec<MatrixFormat> {
        vec![
            MatrixFormat::Dense,
            MatrixFormat::Coo,
            MatrixFormat::Csr,
            MatrixFormat::Csc,
            MatrixFormat::Bsr { br: 2, bc: 2 },
            MatrixFormat::Dia,
            MatrixFormat::Ell,
            MatrixFormat::Rlc { run_bits: 4 },
            MatrixFormat::Zvc,
        ]
    }

    fn all_tensor_formats() -> Vec<TensorFormat> {
        vec![
            TensorFormat::Dense,
            TensorFormat::Coo,
            TensorFormat::Csf,
            TensorFormat::HiCoo { block: 2 },
            TensorFormat::Rlc { run_bits: 4 },
            TensorFormat::Zvc,
        ]
    }

    fn sample_a() -> CooMatrix {
        CooMatrix::from_triplets(
            5,
            4,
            vec![
                (0, 0, 2.0),
                (0, 3, 1.0),
                (1, 1, -1.0),
                (2, 0, 3.0),
                (2, 2, 4.0),
                (4, 3, 5.0),
            ],
        )
        .unwrap()
    }

    fn sample_b_dense() -> DenseMatrix {
        DenseMatrix::from_vec(4, 3, (0..12).map(|i| (i % 7) as f64 - 3.0).collect()).unwrap()
    }

    #[test]
    fn spmv_agrees_across_all_formats() {
        let coo = sample_a();
        let x = vec![1.0, -2.0, 3.0, 0.5];
        let reference = spmv(&MatrixData::Csr(CsrMatrix::from_coo(&coo)), &x).unwrap();
        for fmt in all_matrix_formats() {
            let data = MatrixData::encode(&coo, &fmt).unwrap();
            assert_eq!(spmv(&data, &x).unwrap(), reference, "spmv({fmt})");
            assert_eq!(
                spmv_via_stream(&data, &x).unwrap(),
                reference,
                "spmv_via_stream({fmt})"
            );
        }
    }

    #[test]
    fn spmm_agrees_across_all_formats() {
        let coo = sample_a();
        let b = sample_b_dense();
        let reference = gemm_naive(&coo.clone().into_dense(), &b);
        for fmt in all_matrix_formats() {
            let data = MatrixData::encode(&coo, &fmt).unwrap();
            assert_eq!(spmm(&data, &b).unwrap(), reference, "spmm({fmt})");
            assert_eq!(
                spmm_via_stream(&data, &b).unwrap(),
                reference,
                "spmm_via_stream({fmt})"
            );
            assert_eq!(
                spmm_parallel(&data, &b).unwrap(),
                reference,
                "spmm_parallel({fmt})"
            );
        }
    }

    #[test]
    fn spmm_sparse_b_agrees_across_all_formats() {
        let b_coo = sample_a(); // 5x4 sparse B
        let a =
            DenseMatrix::from_vec(3, 5, (0..15).map(|i| (i % 5) as f64 - 2.0).collect()).unwrap();
        let reference = gemm_naive(&a, &b_coo.clone().into_dense());
        for fmt in all_matrix_formats() {
            let data = MatrixData::encode(&b_coo, &fmt).unwrap();
            assert_eq!(
                spmm_sparse_b(&a, &data).unwrap(),
                reference,
                "spmm_sparse_b({fmt})"
            );
        }
    }

    #[test]
    fn spgemm_agrees_across_all_format_pairs() {
        let a_coo = sample_a(); // 5x4
        let b_coo = CooMatrix::from_triplets(
            4,
            6,
            vec![(0, 0, 1.0), (0, 5, -2.0), (2, 3, 3.0), (3, 1, 4.0)],
        )
        .unwrap();
        let reference = gemm_naive(&a_coo.clone().into_dense(), &b_coo.clone().into_dense());
        for fa in all_matrix_formats() {
            for fb in all_matrix_formats() {
                let a = MatrixData::encode(&a_coo, &fa).unwrap();
                let b = MatrixData::encode(&b_coo, &fb).unwrap();
                let o = spgemm(&a, &b).unwrap();
                assert_eq!(o.to_dense(), reference, "spgemm({fa}, {fb})");
                let orw = spgemm_rowwise(&a, &b).unwrap();
                assert_eq!(orw, o, "spgemm_rowwise({fa}, {fb}) must be bit-identical");
                let op = spgemm_parallel(&a, &b).unwrap();
                assert_eq!(op.to_dense(), reference, "spgemm_parallel({fa}, {fb})");
            }
        }
    }

    #[test]
    fn tensor_kernels_agree_across_all_formats() {
        let coo = CooTensor3::from_quads(
            4,
            3,
            5,
            vec![
                (0, 0, 0, 1.0),
                (0, 0, 2, 2.0),
                (1, 1, 1, 3.0),
                (2, 2, 4, -2.0),
                (3, 0, 3, 0.5),
                (3, 2, 3, 1.5),
            ],
        )
        .unwrap();
        let b = DenseMatrix::from_vec(3, 2, (0..6).map(|i| i as f64 + 1.0).collect()).unwrap();
        let c = DenseMatrix::from_vec(5, 2, (0..10).map(|i| (i as f64) - 4.0).collect()).unwrap();
        let ref_mttkrp = mttkrp(
            &TensorData::Csf(sparseflex_formats::CsfTensor::from_coo(&coo)),
            &b,
            &c,
        )
        .unwrap();
        let ref_spttm = spttm(&TensorData::Coo(coo.clone()), &c).unwrap();
        for fmt in all_tensor_formats() {
            let data = TensorData::encode(&coo, &fmt).unwrap();
            let o = mttkrp_via_stream(&data, &b, &c).unwrap();
            assert!(o.approx_eq(&ref_mttkrp, 1e-12), "mttkrp({fmt})");
            assert_eq!(spttm(&data, &c).unwrap(), ref_spttm, "spttm({fmt})");
            assert_eq!(
                spttm_via_stream(&data, &c).unwrap(),
                ref_spttm,
                "spttm_via_stream({fmt})"
            );
        }
    }

    #[test]
    fn shape_mismatches_surface_as_errors_not_panics() {
        let a = MatrixData::Coo(CooMatrix::empty(3, 5));
        let b = DenseMatrix::zeros(4, 2);
        assert!(matches!(
            spmm(&a, &b),
            Err(KernelError::ShapeMismatch {
                kernel: "spmm",
                expected: 5,
                actual: 4,
                ..
            })
        ));
        assert!(spmv(&a, &[0.0; 4]).is_err());
        assert!(spgemm(&a, &MatrixData::Coo(CooMatrix::empty(4, 2))).is_err());
        let t = TensorData::Coo(CooTensor3::empty(2, 3, 4));
        assert!(spttm(&t, &DenseMatrix::zeros(5, 2)).is_err());
        assert!(mttkrp(&t, &DenseMatrix::zeros(3, 2), &DenseMatrix::zeros(4, 3)).is_err());
    }

    #[test]
    fn empty_operands_yield_zero_outputs() {
        let a = MatrixData::Coo(CooMatrix::empty(3, 4));
        let b = sample_b_dense();
        assert_eq!(spmm(&a, &b).unwrap(), DenseMatrix::zeros(3, 3));
        assert_eq!(spmv(&a, &[1.0; 4]).unwrap(), vec![0.0; 3]);
    }
}

//! SpMV: sparse matrix × dense vector.
//!
//! The format-generic entry point is [`crate::spmv()`]; this module holds the
//! retained CSR fast path the dispatcher specializes to.

use crate::lanes::dot_indexed;
use sparseflex_formats::{CsrMatrix, SparseMatrix, Value};

/// CSR SpMV fast path: `y = A * x`.
///
/// "SpMM and SpMV ... are the key computational kernels in an iterative
/// solver for sparse linear systems" (§II). Each row reduces through the
/// shared four-chain gather dot ([`dot_indexed`]) — the same routine the
/// generic stream path uses, keeping the two bit-for-bit identical.
/// Shapes are validated by the generic dispatcher; this inner routine
/// only debug-asserts.
pub(crate) fn csr(a: &CsrMatrix, x: &[Value]) -> Vec<Value> {
    debug_assert_eq!(a.cols(), x.len(), "SpMV dimension mismatch");
    let mut y = vec![0.0; a.rows()];
    for (r, out) in y.iter_mut().enumerate() {
        let (cols, vals) = a.row(r);
        *out = dot_indexed(cols, vals, x);
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparseflex_formats::{CooMatrix, SparseMatrix};

    #[test]
    fn matches_dense_matvec() {
        let coo = CooMatrix::from_triplets(
            4,
            3,
            vec![
                (0, 0, 2.0),
                (0, 2, -1.0),
                (1, 1, 3.0),
                (3, 0, 1.0),
                (3, 2, 4.0),
            ],
        )
        .unwrap();
        let a = CsrMatrix::from_coo(&coo);
        let x = vec![1.0, 2.0, 3.0];
        let y = csr(&a, &x);
        let dense = a.to_dense();
        for (r, got) in y.iter().enumerate() {
            let expect: f64 = (0..3).map(|c| dense.get(r, c) * x[c]).sum();
            assert_eq!(*got, expect);
        }
    }

    #[test]
    fn empty_matrix_gives_zero_vector() {
        let a = CsrMatrix::from_coo(&CooMatrix::empty(5, 4));
        assert_eq!(csr(&a, &[1.0; 4]), vec![0.0; 5]);
    }
}

//! SpGEMM: sparse × sparse matrix multiplication (Gustavson's algorithm).
//!
//! "SpGEMM dominates the setup times of applications that use multigrid
//! methods" (§II). The CSR(A)-CSR(B)-CSR(O) ACF is the one the paper's
//! Fig. 5 shows winning at extreme sparsity on GPUs.
//!
//! The format-generic entry points are [`crate::spgemm()`] /
//! [`crate::spgemm_parallel`]; this module holds the retained CSR×CSR fast
//! paths and the Gustavson row routine the generic stream consumer shares.

use sparseflex_formats::{CsrMatrix, SparseMatrix, Value};

/// Gustavson SpGEMM fast path: `O = A * B`, all three in CSR.
///
/// Row `i` of `O` is the sparse linear combination of the rows of `B`
/// selected by row `i` of `A`, accumulated in a dense scratch row (the
/// classic sparse accumulator).
pub(crate) fn csr_csr(a: &CsrMatrix, b: &CsrMatrix) -> CsrMatrix {
    debug_assert_eq!(a.cols(), b.rows(), "SpGEMM inner dimensions must agree");
    let m = a.rows();
    let n = b.cols();
    let mut row_ptr = Vec::with_capacity(m + 1);
    row_ptr.push(0usize);
    let mut col_ids = Vec::new();
    let mut values = Vec::new();

    let mut scratch = Accumulator::new(n);
    for i in 0..m {
        let (acols, avals) = a.row(i);
        gustavson_row(acols, avals, b, &mut scratch, &mut col_ids, &mut values);
        row_ptr.push(values.len());
    }
    CsrMatrix::from_parts(m, n, row_ptr, col_ids, values)
        .expect("Gustavson emits sorted valid CSR rows")
}

/// Sparse-accumulator scratch reused across output rows: the dense value
/// row, an occupancy stamp per column (so first-touch detection is O(1)
/// even when cancellation leaves `acc[j] == 0.0` mid-row), and the touched
/// column list.
pub(crate) struct Accumulator {
    acc: Vec<f64>,
    occupied: Vec<bool>,
    touched: Vec<usize>,
}

impl Accumulator {
    /// Scratch for output rows of width `n`.
    pub(crate) fn new(n: usize) -> Self {
        Accumulator {
            acc: vec![0.0; n],
            occupied: vec![false; n],
            touched: Vec::with_capacity(n),
        }
    }
}

/// One Gustavson row — the sparse-accumulator step the generic stream
/// dispatcher also drives, one fiber of `A` at a time: accumulate
/// `Σ A[i][k] * B[k][:]` into the scratch row, emit sorted nonzeros.
pub(crate) fn gustavson_row(
    acols: &[usize],
    avals: &[Value],
    b: &CsrMatrix,
    scratch: &mut Accumulator,
    col_ids: &mut Vec<usize>,
    values: &mut Vec<f64>,
) {
    for (k, av) in acols.iter().zip(avals) {
        let (bcols, bvals) = b.row(*k);
        for (j, bv) in bcols.iter().zip(bvals) {
            if !scratch.occupied[*j] {
                scratch.occupied[*j] = true;
                scratch.touched.push(*j);
            }
            scratch.acc[*j] += av * bv;
        }
    }
    scratch.touched.sort_unstable();
    for &j in &scratch.touched {
        if scratch.acc[j] != 0.0 {
            col_ids.push(j);
            values.push(scratch.acc[j]);
        }
        scratch.acc[j] = 0.0;
        scratch.occupied[j] = false;
    }
    scratch.touched.clear();
}

/// Min-heap scratch for the row-wise merge: `(output column j, A-slot s,
/// position within B's row s)` entries ordered lexicographically, so ties
/// on `j` pop in ascending A-slot order — exactly Gustavson's
/// k-ascending accumulation order per output element.
pub(crate) type MergeHeap = Vec<(usize, usize, usize)>;

#[inline]
fn heap_push(h: &mut MergeHeap, item: (usize, usize, usize)) {
    h.push(item);
    let mut i = h.len() - 1;
    while i > 0 {
        let parent = (i - 1) / 2;
        if h[i] < h[parent] {
            h.swap(i, parent);
            i = parent;
        } else {
            break;
        }
    }
}

#[inline]
fn heap_pop(h: &mut MergeHeap) -> Option<(usize, usize, usize)> {
    if h.is_empty() {
        return None;
    }
    let last = h.len() - 1;
    h.swap(0, last);
    let top = h.pop().expect("heap checked non-empty");
    let mut i = 0;
    loop {
        let (l, r) = (2 * i + 1, 2 * i + 2);
        let mut smallest = i;
        if l < h.len() && h[l] < h[smallest] {
            smallest = l;
        }
        if r < h.len() && h[r] < h[smallest] {
            smallest = r;
        }
        if smallest == i {
            break;
        }
        h.swap(i, smallest);
        i = smallest;
    }
    Some(top)
}

/// One **row-wise-product** output row (*Maple*'s dataflow, PAPERS.md):
/// instead of scattering into a dense accumulator the width of `B`, merge
/// the sorted B-rows selected by the A-fiber with a k-way heap, emitting
/// output columns in ascending order as the merge front passes them.
///
/// Scratch is O(row fan-out) instead of O(B cols), which is the win at
/// extreme sparsity / very wide `B`. The merge pops ties on the output
/// column in A-slot (= ascending `k`) order and starts every element's
/// accumulation from `0.0`, so each output value sees the **identical**
/// floating-point addition sequence as [`gustavson_row`] — including the
/// `!= 0.0` exact-cancellation drop — making the two algorithms
/// bit-for-bit interchangeable.
pub(crate) fn rowwise_row(
    acols: &[usize],
    avals: &[Value],
    b: &CsrMatrix,
    heap: &mut MergeHeap,
    col_ids: &mut Vec<usize>,
    values: &mut Vec<f64>,
) {
    heap.clear();
    for (s, &k) in acols.iter().enumerate() {
        let (bcols, _) = b.row(k);
        if !bcols.is_empty() {
            heap_push(heap, (bcols[0], s, 0));
        }
    }
    let mut cur_j = usize::MAX;
    let mut acc = 0.0f64;
    let mut live = false;
    while let Some((j, s, pos)) = heap_pop(heap) {
        if live && j != cur_j {
            if acc != 0.0 {
                col_ids.push(cur_j);
                values.push(acc);
            }
            acc = 0.0;
        }
        cur_j = j;
        live = true;
        let (bcols, bvals) = b.row(acols[s]);
        acc += avals[s] * bvals[pos];
        if pos + 1 < bcols.len() {
            heap_push(heap, (bcols[pos + 1], s, pos + 1));
        }
    }
    if live && acc != 0.0 {
        col_ids.push(cur_j);
        values.push(acc);
    }
}

/// Row-wise-product SpGEMM fast path: `O = A * B`, all three in CSR.
pub(crate) fn csr_csr_rowwise(a: &CsrMatrix, b: &CsrMatrix) -> CsrMatrix {
    debug_assert_eq!(a.cols(), b.rows(), "SpGEMM inner dimensions must agree");
    let m = a.rows();
    let n = b.cols();
    let mut row_ptr = Vec::with_capacity(m + 1);
    row_ptr.push(0usize);
    let mut col_ids = Vec::new();
    let mut values = Vec::new();
    let mut heap: MergeHeap = Vec::new();
    for i in 0..m {
        let (acols, avals) = a.row(i);
        rowwise_row(acols, avals, b, &mut heap, &mut col_ids, &mut values);
        row_ptr.push(values.len());
    }
    CsrMatrix::from_parts(m, n, row_ptr, col_ids, values)
        .expect("the row-wise merge emits sorted valid CSR rows")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::gemm_naive;
    use sparseflex_formats::{CooMatrix, SparseMatrix};

    fn mk(rows: usize, cols: usize, seed: u64, nnz: usize) -> CsrMatrix {
        let mut state = seed;
        let mut triplets = Vec::new();
        for _ in 0..nnz {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let r = (state >> 33) as usize % rows;
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let c = (state >> 33) as usize % cols;
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = ((state >> 33) % 9) as f64 - 4.0;
            if v != 0.0 {
                triplets.push((r, c, v));
            }
        }
        CsrMatrix::from_coo(&CooMatrix::from_triplets(rows, cols, triplets).unwrap())
    }

    #[test]
    fn matches_dense_reference() {
        let a = mk(8, 10, 1, 20);
        let b = mk(10, 6, 2, 18);
        let o = csr_csr(&a, &b);
        let expect = gemm_naive(&a.to_dense(), &b.to_dense());
        assert_eq!(o.to_dense(), expect);
    }

    #[test]
    fn cancellation_drops_output_entry() {
        // A row combining +1 and -1 contributions that cancel exactly.
        let a = CsrMatrix::from_coo(
            &CooMatrix::from_triplets(1, 2, vec![(0, 0, 1.0), (0, 1, 1.0)]).unwrap(),
        );
        let b = CsrMatrix::from_coo(
            &CooMatrix::from_triplets(2, 1, vec![(0, 0, 5.0), (1, 0, -5.0)]).unwrap(),
        );
        let o = csr_csr(&a, &b);
        assert_eq!(o.nnz(), 0);
    }

    #[test]
    fn identity_is_neutral() {
        let a = mk(12, 12, 5, 30);
        let id = {
            let t: Vec<_> = (0..12).map(|i| (i, i, 1.0)).collect();
            CsrMatrix::from_coo(&CooMatrix::from_triplets(12, 12, t).unwrap())
        };
        assert_eq!(csr_csr(&a, &id).to_dense(), a.to_dense());
        assert_eq!(csr_csr(&id, &a).to_dense(), a.to_dense());
    }

    #[test]
    fn empty_operand_yields_empty() {
        let a = CsrMatrix::from_coo(&CooMatrix::empty(4, 5));
        let b = mk(5, 3, 6, 8);
        assert_eq!(csr_csr(&a, &b).nnz(), 0);
    }

    /// The row-wise merge must replay Gustavson's exact addition sequence,
    /// so the two fast paths are bit-for-bit equal — including dropped
    /// exact cancellations — on random operands.
    #[test]
    fn rowwise_is_bit_identical_to_gustavson() {
        for seed in 0..6u64 {
            let a = mk(30, 25, seed * 2 + 1, 150);
            let b = mk(25, 40, seed * 2 + 2, 170);
            assert_eq!(csr_csr_rowwise(&a, &b), csr_csr(&a, &b), "seed {seed}");
        }
    }

    #[test]
    fn rowwise_drops_exact_cancellation_like_gustavson() {
        let a = CsrMatrix::from_coo(
            &CooMatrix::from_triplets(1, 2, vec![(0, 0, 1.0), (0, 1, 1.0)]).unwrap(),
        );
        let b = CsrMatrix::from_coo(
            &CooMatrix::from_triplets(2, 1, vec![(0, 0, 5.0), (1, 0, -5.0)]).unwrap(),
        );
        assert_eq!(csr_csr_rowwise(&a, &b).nnz(), 0);
    }

    #[test]
    fn rowwise_handles_empty_operands() {
        let a = CsrMatrix::from_coo(&CooMatrix::empty(4, 5));
        let b = mk(5, 3, 6, 8);
        assert_eq!(csr_csr_rowwise(&a, &b).nnz(), 0);
        let wide = CsrMatrix::from_coo(&CooMatrix::empty(5, 1000));
        assert_eq!(csr_csr_rowwise(&a, &wide).nnz(), 0);
    }

    #[test]
    fn output_rows_are_sorted() {
        let a = mk(20, 20, 7, 80);
        let b = mk(20, 20, 8, 80);
        let o = csr_csr(&a, &b);
        for r in 0..o.rows() {
            let (cols, _) = o.row(r);
            assert!(cols.windows(2).all(|w| w[0] < w[1]), "row {r} unsorted");
        }
    }
}

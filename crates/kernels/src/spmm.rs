//! SpMM: sparse matrix × dense matrix, in the ACF variants the paper
//! contrasts (§III-B, Fig. 5).
//!
//! The format-generic entry points are [`crate::spmm()`] /
//! [`crate::spmm_parallel`] / [`crate::spmm_sparse_b`]; this module holds
//! the retained concrete fast paths the dispatcher specializes to. Shapes
//! are validated by the dispatcher, so the inner routines only
//! debug-assert.

use crate::lanes::{axpy, dot_indexed};
use sparseflex_formats::{CooMatrix, CscMatrix, CsrMatrix, DenseMatrix, SparseMatrix};

/// SpMM with the streaming operand in COO — a faithful implementation of
/// the paper's **Algorithm 1**: iterate the nonzeros of `A`, multiply each
/// against the matching dense row of `B`, accumulate into dense `O`.
pub(crate) fn coo_dense(a: &CooMatrix, b: &DenseMatrix) -> DenseMatrix {
    debug_assert_eq!(a.cols(), b.rows(), "SpMM inner dimensions must agree");
    let n = b.cols();
    let mut o = DenseMatrix::zeros(a.rows(), n);
    // Alg. 1: for i in 0..nnz { for j in 0..N { O[rid][j] += val * B[cid][j] } }
    for (rid, cid, val) in a.iter() {
        let orow = &mut o.data_mut()[rid * n..(rid + 1) * n];
        axpy(orow, b.row(cid), val);
    }
    o
}

/// SpMM with the streaming operand in CSR: row-at-a-time accumulation.
pub(crate) fn csr_dense(a: &CsrMatrix, b: &DenseMatrix) -> DenseMatrix {
    debug_assert_eq!(a.cols(), b.rows(), "SpMM inner dimensions must agree");
    let n = b.cols();
    let mut o = DenseMatrix::zeros(a.rows(), n);
    for r in 0..a.rows() {
        let (cols, vals) = a.row(r);
        let orow = &mut o.data_mut()[r * n..(r + 1) * n];
        for (c, v) in cols.iter().zip(vals) {
            axpy(orow, b.row(*c), *v);
        }
    }
    o
}

/// SpMM with a dense streaming operand and a CSC **stationary** operand:
/// `O = A * B` where `B` is sparse-by-column — the Dense(A)-CSC(B) ACF the
/// paper's Fig. 6b maps onto the weight-stationary PEs (each PE holds one
/// compressed column of `B`).
pub(crate) fn dense_csc(a: &DenseMatrix, b: &CscMatrix) -> DenseMatrix {
    debug_assert_eq!(a.cols(), b.rows(), "SpMM inner dimensions must agree");
    let (m, n) = (a.rows(), b.cols());
    let mut o = DenseMatrix::zeros(m, n);
    for j in 0..n {
        let (rows, vals) = b.col(j);
        for i in 0..m {
            o.set(i, j, dot_indexed(rows, vals, a.row(i)));
        }
    }
    o
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::gemm_naive;
    use sparseflex_formats::SparseMatrix;

    fn sparse_a() -> CooMatrix {
        CooMatrix::from_triplets(
            5,
            4,
            vec![
                (0, 0, 2.0),
                (0, 3, 1.0),
                (1, 1, -1.0),
                (2, 0, 3.0),
                (2, 2, 4.0),
                (4, 3, 5.0),
            ],
        )
        .unwrap()
    }

    fn dense_b() -> DenseMatrix {
        DenseMatrix::from_rows(vec![
            vec![1.0, 2.0, 3.0],
            vec![4.0, 5.0, 6.0],
            vec![7.0, 8.0, 9.0],
            vec![10.0, 11.0, 12.0],
        ])
        .unwrap()
    }

    #[test]
    fn alg1_coo_matches_dense_gemm() {
        let a = sparse_a();
        let b = dense_b();
        let expect = gemm_naive(&a.to_dense(), &b);
        assert_eq!(coo_dense(&a, &b), expect);
    }

    #[test]
    fn csr_variant_matches() {
        let a = sparse_a();
        let b = dense_b();
        let csr = CsrMatrix::from_coo(&a);
        let expect = gemm_naive(&a.to_dense(), &b);
        assert_eq!(csr_dense(&csr, &b), expect);
    }

    #[test]
    fn dense_csc_variant_matches() {
        // O = A_dense * B_sparse with B in CSC.
        let b_sparse = sparse_a(); // reuse pattern as the sparse B (5x4)
        let a_dense = DenseMatrix::from_rows(vec![
            vec![1.0, 0.0, 2.0, 0.0, 1.0],
            vec![0.0, 3.0, 0.0, 1.0, 0.0],
        ])
        .unwrap();
        let csc = CscMatrix::from_coo(&b_sparse);
        let expect = gemm_naive(&a_dense, &b_sparse.to_dense());
        assert_eq!(dense_csc(&a_dense, &csc), expect);
    }

    #[test]
    fn empty_sparse_gives_zeros() {
        let a = CooMatrix::empty(3, 4);
        let b = dense_b();
        let o = coo_dense(&a, &b);
        assert_eq!(o, DenseMatrix::zeros(3, 3));
    }
}

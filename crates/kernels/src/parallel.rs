//! Thread-pool helpers for the multithreaded kernel variants.
//!
//! All parallel kernels partition their *output* rows into disjoint chunks
//! and hand each chunk to one scoped thread, so no synchronization beyond
//! the final join is needed and results are bit-identical to the
//! sequential variants.

/// Number of worker threads to use: the machine's available parallelism,
/// capped by the amount of work.
pub fn worker_count(work_items: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    hw.min(work_items).max(1)
}

/// Split `data` into at most `parts` contiguous mutable chunks of
/// near-equal length, returning each with the index of its first element.
pub fn chunks_with_offsets<T>(data: &mut [T], parts: usize) -> Vec<(usize, &mut [T])> {
    let len = data.len();
    if len == 0 || parts == 0 {
        return Vec::new();
    }
    let parts = parts.min(len);
    let chunk = len.div_ceil(parts);
    let mut out = Vec::with_capacity(parts);
    let mut rest = data;
    let mut offset = 0;
    while !rest.is_empty() {
        let take = chunk.min(rest.len());
        let (head, tail) = rest.split_at_mut(take);
        out.push((offset, head));
        offset += take;
        rest = tail;
    }
    out
}

/// Run `f(chunk_start, chunk)` over near-equal contiguous chunks of
/// `data`, one scoped thread per chunk.
pub fn par_chunks<T: Send, F>(data: &mut [T], parts: usize, f: F)
where
    F: Fn(usize, &mut [T]) + Sync,
{
    let chunks = chunks_with_offsets(data, parts);
    if chunks.len() <= 1 {
        for (off, chunk) in chunks {
            f(off, chunk);
        }
        return;
    }
    std::thread::scope(|s| {
        for (off, chunk) in chunks {
            let f = &f;
            s.spawn(move || f(off, chunk));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_count_bounds() {
        assert_eq!(worker_count(0), 1);
        assert!(worker_count(1000) >= 1);
        assert!(worker_count(2) <= 2);
    }

    #[test]
    fn chunks_cover_everything_once() {
        let mut v: Vec<u32> = (0..103).collect();
        let chunks = chunks_with_offsets(&mut v, 7);
        let mut seen = Vec::new();
        for (off, c) in &chunks {
            assert_eq!(c[0] as usize, *off);
            seen.extend(c.iter().copied());
        }
        assert_eq!(seen, (0..103).collect::<Vec<_>>());
    }

    #[test]
    fn chunks_handle_degenerate_inputs() {
        let mut empty: Vec<u32> = vec![];
        assert!(chunks_with_offsets(&mut empty, 4).is_empty());
        let mut one = vec![42u32];
        let c = chunks_with_offsets(&mut one, 8);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn par_chunks_writes_disjoint() {
        let mut v = vec![0usize; 1000];
        par_chunks(&mut v, 8, |off, chunk| {
            for (i, x) in chunk.iter_mut().enumerate() {
                *x = off + i;
            }
        });
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i);
        }
    }

    #[test]
    fn par_chunks_single_thread_path() {
        let mut v = vec![1u8; 3];
        par_chunks(&mut v, 1, |_, chunk| {
            for x in chunk {
                *x += 1;
            }
        });
        assert_eq!(v, vec![2, 2, 2]);
    }
}

//! Thread-pool helpers for the multithreaded kernel variants.
//!
//! All parallel kernels partition their *output* rows into disjoint chunks
//! and hand each chunk to one scoped thread, so no synchronization beyond
//! the final join is needed and results are bit-identical to the
//! sequential variants.

use std::cell::Cell;
use std::ops::Range;
use std::sync::OnceLock;

thread_local! {
    /// Scoped [`with_workers`] override, highest precedence.
    static FORCED_WORKERS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// `SPARSEFLEX_WORKERS` parsed once per process (invalid or zero values
/// are ignored).
fn env_workers() -> Option<usize> {
    static ENV_WORKERS: OnceLock<Option<usize>> = OnceLock::new();
    *ENV_WORKERS.get_or_init(|| {
        std::env::var("SPARSEFLEX_WORKERS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
    })
}

/// Number of worker threads to use for `work_items` independent units of
/// work, always in `1..=work_items.max(1)`.
///
/// Precedence of the thread-count source (highest first):
/// 1. a [`with_workers`] scope active on the calling thread — benches and
///    the parallel-vs-sequential equality tests pin exact counts this way;
/// 2. the `SPARSEFLEX_WORKERS` environment variable (parsed once per
///    process; zero or unparsable values are ignored) — CI runs set this
///    for reproducible behavior on any core count;
/// 3. the machine's [`std::thread::available_parallelism`].
pub fn worker_count(work_items: usize) -> usize {
    let base = FORCED_WORKERS
        .with(Cell::get)
        .or_else(env_workers)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
    base.min(work_items).max(1)
}

/// Run `f` with [`worker_count`] pinned to exactly `n` on this thread
/// (still capped by each call site's work-item count). Scopes nest; the
/// previous value is restored on exit, including on unwind.
pub fn with_workers<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            FORCED_WORKERS.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(FORCED_WORKERS.with(|c| c.replace(Some(n.max(1)))));
    f()
}

/// Split `data` into one disjoint mutable slice per partition range, where
/// each range covers `stride` elements per unit (`data[r.start * stride ..
/// r.end * stride]`). Ranges must be ascending and tile `0..data.len() /
/// stride` — exactly what the stream partitioners produce.
pub fn split_at_ranges<'a, T>(
    mut data: &'a mut [T],
    ranges: &[Range<usize>],
    stride: usize,
) -> Vec<&'a mut [T]> {
    let mut out = Vec::with_capacity(ranges.len());
    let mut consumed = 0usize;
    for r in ranges {
        debug_assert_eq!(r.start, consumed, "ranges must tile contiguously");
        let take = (r.end - r.start) * stride;
        let (head, tail) = data.split_at_mut(take);
        out.push(head);
        data = tail;
        consumed = r.end;
    }
    debug_assert!(data.is_empty(), "ranges must cover the whole slice");
    out
}

/// Split `data` into at most `parts` contiguous mutable chunks of
/// near-equal length, returning each with the index of its first element.
pub fn chunks_with_offsets<T>(data: &mut [T], parts: usize) -> Vec<(usize, &mut [T])> {
    let len = data.len();
    if len == 0 || parts == 0 {
        return Vec::new();
    }
    let parts = parts.min(len);
    let chunk = len.div_ceil(parts);
    let mut out = Vec::with_capacity(parts);
    let mut rest = data;
    let mut offset = 0;
    while !rest.is_empty() {
        let take = chunk.min(rest.len());
        let (head, tail) = rest.split_at_mut(take);
        out.push((offset, head));
        offset += take;
        rest = tail;
    }
    out
}

/// Run `f(chunk_start, chunk)` over near-equal contiguous chunks of
/// `data`, one scoped thread per chunk.
pub fn par_chunks<T: Send, F>(data: &mut [T], parts: usize, f: F)
where
    F: Fn(usize, &mut [T]) + Sync,
{
    let chunks = chunks_with_offsets(data, parts);
    if chunks.len() <= 1 {
        for (off, chunk) in chunks {
            f(off, chunk);
        }
        return;
    }
    std::thread::scope(|s| {
        for (off, chunk) in chunks {
            let f = &f;
            s.spawn(move || f(off, chunk));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_count_bounds() {
        assert_eq!(worker_count(0), 1);
        assert!(worker_count(1000) >= 1);
        assert!(worker_count(2) <= 2);
    }

    #[test]
    fn with_workers_pins_and_restores() {
        let outside = worker_count(64);
        with_workers(7, || {
            assert_eq!(worker_count(64), 7);
            assert_eq!(worker_count(3), 3, "work cap still applies");
            with_workers(2, || assert_eq!(worker_count(64), 2));
            assert_eq!(worker_count(64), 7, "nested scope must restore");
        });
        assert_eq!(worker_count(64), outside);
        with_workers(0, || assert_eq!(worker_count(64), 1, "zero clamps to 1"));
    }

    #[test]
    fn split_at_ranges_yields_disjoint_strided_slices() {
        let mut v: Vec<usize> = (0..24).collect();
        let slices = split_at_ranges(&mut v, &[0..2, 2..3, 3..8], 3);
        assert_eq!(slices.len(), 3);
        assert_eq!(slices[0], &[0, 1, 2, 3, 4, 5]);
        assert_eq!(slices[1], &[6, 7, 8]);
        assert_eq!(slices[2].len(), 15);
        let empty = split_at_ranges(&mut [] as &mut [usize], &[], 4);
        assert!(empty.is_empty());
    }

    #[test]
    fn chunks_cover_everything_once() {
        let mut v: Vec<u32> = (0..103).collect();
        let chunks = chunks_with_offsets(&mut v, 7);
        let mut seen = Vec::new();
        for (off, c) in &chunks {
            assert_eq!(c[0] as usize, *off);
            seen.extend(c.iter().copied());
        }
        assert_eq!(seen, (0..103).collect::<Vec<_>>());
    }

    #[test]
    fn chunks_handle_degenerate_inputs() {
        let mut empty: Vec<u32> = vec![];
        assert!(chunks_with_offsets(&mut empty, 4).is_empty());
        let mut one = vec![42u32];
        let c = chunks_with_offsets(&mut one, 8);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn par_chunks_writes_disjoint() {
        let mut v = vec![0usize; 1000];
        par_chunks(&mut v, 8, |off, chunk| {
            for (i, x) in chunk.iter_mut().enumerate() {
                *x = off + i;
            }
        });
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i);
        }
    }

    #[test]
    fn par_chunks_single_thread_path() {
        let mut v = vec![1u8; 3];
        par_chunks(&mut v, 1, |_, chunk| {
            for x in chunk {
                *x += 1;
            }
        });
        assert_eq!(v, vec![2, 2, 2]);
    }
}

//! Typed kernel errors.
//!
//! The format-generic entry points validate operand shapes up front and
//! return [`KernelError`] instead of panicking, so a host scheduler (or the
//! SAGE → MINT → accelerator pipeline) can reject a malformed launch
//! without unwinding.

/// Why a kernel launch was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelError {
    /// Two operand dimensions that must agree do not.
    ShapeMismatch {
        /// Kernel name (`"spmv"`, `"spmm"`, ...).
        kernel: &'static str,
        /// Which dimension pair disagrees (e.g. `"A cols vs x len"`).
        what: &'static str,
        /// The dimension the left-hand operand implies.
        expected: usize,
        /// The dimension actually supplied.
        actual: usize,
    },
    /// The operand arrived in a format this kernel (or backend) cannot
    /// consume — the software analogue of launching on an accelerator
    /// whose ACF set excludes the format (Table II's `Fix_*` classes).
    UnsupportedFormat {
        /// Kernel name.
        kernel: &'static str,
        /// Display name of the offending format.
        format: String,
    },
}

impl std::fmt::Display for KernelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KernelError::ShapeMismatch {
                kernel,
                what,
                expected,
                actual,
            } => write!(
                f,
                "{kernel}: dimension mismatch ({what}: expected {expected}, got {actual})"
            ),
            KernelError::UnsupportedFormat { kernel, format } => {
                write!(f, "{kernel}: unsupported operand format {format}")
            }
        }
    }
}

impl std::error::Error for KernelError {}

/// Shape-check helper shared by the generic entry points.
#[inline]
pub(crate) fn check_dim(
    kernel: &'static str,
    what: &'static str,
    expected: usize,
    actual: usize,
) -> Result<(), KernelError> {
    if expected == actual {
        Ok(())
    } else {
        Err(KernelError::ShapeMismatch {
            kernel,
            what,
            expected,
            actual,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_kernel_and_dimensions() {
        let e = KernelError::ShapeMismatch {
            kernel: "spmv",
            what: "A cols vs x len",
            expected: 4,
            actual: 3,
        };
        let msg = e.to_string();
        assert!(msg.contains("spmv") && msg.contains("expected 4") && msg.contains("got 3"));

        let u = KernelError::UnsupportedFormat {
            kernel: "spmm",
            format: "BSR2x2".to_string(),
        };
        assert!(u.to_string().contains("unsupported operand format BSR2x2"));
    }

    #[test]
    fn check_dim_round_trips() {
        assert!(check_dim("spmv", "x", 3, 3).is_ok());
        assert!(matches!(
            check_dim("spmv", "x", 3, 4),
            Err(KernelError::ShapeMismatch { actual: 4, .. })
        ));
    }
}

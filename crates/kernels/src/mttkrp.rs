//! MTTKRP: matricized tensor times Khatri-Rao product.
//!
//! "MTTKRP is a core computation for canonical polyadic decomposition
//! (CPD) ... Typically the tensor A is sparse; while the matrices B and C
//! are dense" (§II, Fig. 2). For a 3-way tensor `A (I, K, L)` and dense
//! factor matrices `B (K, J)`, `C (L, J)`:
//!
//! `O[i][j] = sum_{k,l} A[i][k][l] * B[k][j] * C[l][j]`
//!
//! The format-generic entry point is [`crate::mttkrp()`]; this module holds
//! the retained COO and CSF fast paths.

use crate::lanes::{axpy, axpy_mul3, fold_scaled};
use sparseflex_formats::{CooTensor3, CsfTensor, DenseMatrix, SparseMatrix, SparseTensor3};

/// MTTKRP with the tensor in COO: one fused multiply per nonzero per
/// output column.
pub(crate) fn coo(a: &CooTensor3, b: &DenseMatrix, c: &DenseMatrix) -> DenseMatrix {
    debug_assert_eq!(a.dim_y(), b.rows(), "MTTKRP: B rows must match mode-2");
    debug_assert_eq!(a.dim_z(), c.rows(), "MTTKRP: C rows must match mode-3");
    debug_assert_eq!(b.cols(), c.cols(), "MTTKRP: factor ranks must agree");
    let j = b.cols();
    let mut o = DenseMatrix::zeros(a.dim_x(), j);
    for (i, k, l, v) in a.iter() {
        let orow = &mut o.data_mut()[i * j..(i + 1) * j];
        axpy_mul3(orow, b.row(k), c.row(l), v);
    }
    o
}

/// MTTKRP with the tensor in CSF, exploiting fiber-level factoring: the
/// partial sum over `l` within a fiber is computed once, then scaled by
/// `B[k][j]` — the classic CSF MTTKRP optimization (Smith & Karypis) that
/// reduces multiplies from `2 * nnz * J` to `(nnz + fibers) * J` plus the
/// fiber scalings. The generic stream dispatcher runs this same
/// factored form over *any* tensor format's fiber stream.
pub(crate) fn csf(a: &CsfTensor, b: &DenseMatrix, c: &DenseMatrix) -> DenseMatrix {
    debug_assert_eq!(a.dim_y(), b.rows(), "MTTKRP: B rows must match mode-2");
    debug_assert_eq!(a.dim_z(), c.rows(), "MTTKRP: C rows must match mode-3");
    debug_assert_eq!(b.cols(), c.cols(), "MTTKRP: factor ranks must agree");
    let j = b.cols();
    let mut o = DenseMatrix::zeros(a.dim_x(), j);
    let mut fiber_acc = vec![0.0f64; j];
    for (si, &i) in a.x_fids().iter().enumerate() {
        for fi in a.x_ptr()[si]..a.x_ptr()[si + 1] {
            let k = a.y_fids()[fi];
            fiber_acc.iter_mut().for_each(|v| *v = 0.0);
            for zi in a.y_ptr()[fi]..a.y_ptr()[fi + 1] {
                let l = a.z_fids()[zi];
                let v = a.values()[zi];
                axpy(&mut fiber_acc, c.row(l), v);
            }
            let orow = &mut o.data_mut()[i * j..(i + 1) * j];
            fold_scaled(orow, &fiber_acc, b.row(k));
        }
    }
    o
}

pub(crate) fn check_factors(
    dim_y: usize,
    dim_z: usize,
    b: &DenseMatrix,
    c: &DenseMatrix,
) -> Result<(), crate::KernelError> {
    crate::error::check_dim("mttkrp", "B rows vs tensor mode-2", dim_y, b.rows())?;
    crate::error::check_dim("mttkrp", "C rows vs tensor mode-3", dim_z, c.rows())?;
    crate::error::check_dim("mttkrp", "factor ranks", b.cols(), c.cols())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparseflex_formats::SparseMatrix;

    fn tensor() -> CooTensor3 {
        CooTensor3::from_quads(
            4,
            3,
            5,
            vec![
                (0, 0, 0, 1.0),
                (0, 0, 2, 2.0),
                (1, 1, 1, 3.0),
                (2, 2, 4, -2.0),
                (3, 0, 3, 0.5),
                (3, 2, 3, 1.5),
            ],
        )
        .unwrap()
    }

    fn factors() -> (DenseMatrix, DenseMatrix) {
        let b = DenseMatrix::from_vec(3, 2, (0..6).map(|i| i as f64 + 1.0).collect()).unwrap();
        let c = DenseMatrix::from_vec(5, 2, (0..10).map(|i| (i as f64) - 4.0).collect()).unwrap();
        (b, c)
    }

    fn naive(a: &CooTensor3, b: &DenseMatrix, c: &DenseMatrix) -> DenseMatrix {
        let j = b.cols();
        let mut o = DenseMatrix::zeros(a.dim_x(), j);
        for i in 0..a.dim_x() {
            for jj in 0..j {
                let mut acc = 0.0;
                for k in 0..a.dim_y() {
                    for l in 0..a.dim_z() {
                        acc += a.get(i, k, l) * b.get(k, jj) * c.get(l, jj);
                    }
                }
                o.set(i, jj, acc);
            }
        }
        o
    }

    #[test]
    fn coo_matches_naive() {
        let a = tensor();
        let (b, c) = factors();
        assert_eq!(coo(&a, &b, &c), naive(&a, &b, &c));
    }

    #[test]
    fn csf_matches_coo() {
        let a = tensor();
        let (b, c) = factors();
        let t = CsfTensor::from_coo(&a);
        let coo_result = coo(&a, &b, &c);
        let csf_result = csf(&t, &b, &c);
        assert!(csf_result.approx_eq(&coo_result, 1e-12));
    }

    #[test]
    fn empty_tensor_gives_zero() {
        let a = CooTensor3::empty(3, 3, 5);
        let (b, c) = factors();
        assert_eq!(coo(&a, &b, &c), DenseMatrix::zeros(3, 2));
    }

    #[test]
    fn rank_mismatch_is_a_shape_error() {
        let a = tensor();
        let b = DenseMatrix::zeros(3, 2);
        let c = DenseMatrix::zeros(5, 3);
        assert!(matches!(
            check_factors(a.dim_y(), a.dim_z(), &b, &c),
            Err(crate::KernelError::ShapeMismatch {
                what: "factor ranks",
                ..
            })
        ));
    }
}

//! Dense GEMM: `O = A * B` with `A: MxK`, `B: KxN`, `O: MxN`.

use crate::parallel::{par_chunks, worker_count};
use sparseflex_formats::{DenseMatrix, SparseMatrix};

/// Cache-blocked sequential dense GEMM (ikj loop order so the innermost
/// loop streams both `B` and `O` rows contiguously).
pub fn gemm(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    assert_eq!(a.cols(), b.rows(), "GEMM inner dimensions must agree");
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut out = DenseMatrix::zeros(m, n);
    gemm_into(a.data(), b.data(), out.data_mut(), m, k, n, 0);
    out
}

/// Multithreaded dense GEMM: output rows are partitioned across scoped
/// threads; each thread computes its rows independently.
pub fn gemm_parallel(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    assert_eq!(a.cols(), b.rows(), "GEMM inner dimensions must agree");
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut out = DenseMatrix::zeros(m, n);
    let workers = worker_count(m);
    {
        let a_data = a.data();
        let b_data = b.data();
        // Chunk the output by whole rows: chunk length is a multiple of n.
        let rows_per = m.div_ceil(workers).max(1);
        par_chunks(out.data_mut(), m.div_ceil(rows_per), |off, chunk| {
            let row0 = off / n;
            let rows_here = chunk.len() / n;
            gemm_into(
                &a_data[row0 * k..(row0 + rows_here) * k],
                b_data,
                chunk,
                rows_here,
                k,
                n,
                0,
            );
        });
    }
    out
}

/// Inner blocked kernel writing into a raw output slice. `_depth` is
/// reserved for future recursive blocking.
fn gemm_into(a: &[f64], b: &[f64], o: &mut [f64], m: usize, k: usize, n: usize, _depth: usize) {
    const BK: usize = 64;
    for k0 in (0..k).step_by(BK) {
        let k1 = (k0 + BK).min(k);
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let orow = &mut o[i * n..(i + 1) * n];
            for kk in k0..k1 {
                let av = arow[kk];
                if av == 0.0 {
                    continue;
                }
                let brow = &b[kk * n..(kk + 1) * n];
                for (ov, bv) in orow.iter_mut().zip(brow) {
                    *ov += av * bv;
                }
            }
        }
    }
}

/// Naive triple-loop GEMM used only as a test oracle.
pub fn gemm_naive(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    assert_eq!(a.cols(), b.rows());
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut out = DenseMatrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0;
            for kk in 0..k {
                acc += a.get(i, kk) * b.get(kk, j);
            }
            out.set(i, j, acc);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparseflex_formats::{DenseMatrix, SparseMatrix};

    fn mat(rows: usize, cols: usize, seed: u64) -> DenseMatrix {
        // Small deterministic pseudo-random fill (LCG), no rand dependency
        // needed here.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut data = Vec::with_capacity(rows * cols);
        for _ in 0..rows * cols {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            data.push(((state >> 33) % 17) as f64 - 8.0);
        }
        DenseMatrix::from_vec(rows, cols, data).unwrap()
    }

    #[test]
    fn blocked_matches_naive() {
        let a = mat(17, 23, 1);
        let b = mat(23, 9, 2);
        assert_eq!(gemm(&a, &b), gemm_naive(&a, &b));
    }

    #[test]
    fn parallel_matches_sequential() {
        let a = mat(64, 48, 3);
        let b = mat(48, 33, 4);
        assert_eq!(gemm_parallel(&a, &b), gemm(&a, &b));
    }

    #[test]
    fn identity_multiplication() {
        let a = mat(8, 8, 5);
        let mut id = DenseMatrix::zeros(8, 8);
        for i in 0..8 {
            id.set(i, i, 1.0);
        }
        assert_eq!(gemm(&a, &id), a);
        assert_eq!(gemm(&id, &a), a);
    }

    #[test]
    fn single_row_and_column() {
        let a = mat(1, 31, 6);
        let b = mat(31, 1, 7);
        let o = gemm(&a, &b);
        assert_eq!(o.rows(), 1);
        assert_eq!(o.cols(), 1);
        assert_eq!(o, gemm_naive(&a, &b));
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn dimension_mismatch_panics() {
        let a = mat(2, 3, 8);
        let b = mat(4, 2, 9);
        let _ = gemm(&a, &b);
    }

    #[test]
    fn crossover_block_boundary() {
        // K exactly at and straddling the blocking factor.
        for k in [63, 64, 65, 128] {
            let a = mat(5, k, k as u64);
            let b = mat(k, 6, k as u64 + 1);
            assert_eq!(gemm(&a, &b), gemm_naive(&a, &b), "K={k}");
        }
    }
}

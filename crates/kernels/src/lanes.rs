//! Chunked dense-lane primitives shared by every kernel inner loop.
//!
//! The SSSR model (*Sparse Stream Semantic Registers*, PAPERS.md) splits a
//! sparse kernel into two decoupled streams: an index stream walking the
//! compressed structure, and a dense FMA stream over the output columns.
//! The fiber-stream traversal supplies the former; this module supplies
//! the latter as fixed-width lane loops (`LANES` elements per step) whose
//! bodies the optimizer reliably auto-vectorizes — the scalar fallback
//! covers the tail.
//!
//! Every primitive performs **exactly** the element-wise operations of the
//! naive loop it replaces, in the same per-output-element order, so
//! results are bit-for-bit identical to the pre-lane kernels: `axpy`,
//! `axpy_mul3`, and `fold_scaled` touch each output column independently
//! (chunking changes iteration bookkeeping, not arithmetic), and the one
//! primitive that *does* reassociate a reduction — [`dot_indexed`]'s
//! four-accumulator dot — is used by both the tuned CSR fast path and the
//! generic stream path, so the dispatcher's `generic == specialized`
//! contract still holds exactly.

use sparseflex_formats::Value;

/// Lane width for the chunked dense loops (f64 elements per step — two
/// AVX2 / one AVX-512 register's worth, and enough unroll for NEON).
pub const LANES: usize = 8;

/// `out[j] += a * b[j]` for every `j` — the SpMM/SpTTM/MTTKRP row update.
///
/// `out` and `b` must have equal length (the dispatchers slice both from
/// shape-checked operands).
#[inline]
pub fn axpy(out: &mut [Value], b: &[Value], a: Value) {
    debug_assert_eq!(out.len(), b.len(), "axpy lanes must be parallel");
    let split = out.len() - out.len() % LANES;
    let (o_main, o_tail) = out.split_at_mut(split);
    let (b_main, b_tail) = b.split_at(split);
    for (oc, bc) in o_main
        .chunks_exact_mut(LANES)
        .zip(b_main.chunks_exact(LANES))
    {
        for i in 0..LANES {
            oc[i] += a * bc[i];
        }
    }
    for (ov, bv) in o_tail.iter_mut().zip(b_tail) {
        *ov += a * bv;
    }
}

/// `out[j] += a * b[j] * c[j]` for every `j` — the fused COO MTTKRP update
/// (one nonzero against both factor rows).
#[inline]
pub fn axpy_mul3(out: &mut [Value], b: &[Value], c: &[Value], a: Value) {
    debug_assert_eq!(out.len(), b.len(), "axpy_mul3 lanes must be parallel");
    debug_assert_eq!(out.len(), c.len(), "axpy_mul3 lanes must be parallel");
    let split = out.len() - out.len() % LANES;
    let (o_main, o_tail) = out.split_at_mut(split);
    let (b_main, b_tail) = b.split_at(split);
    let (c_main, c_tail) = c.split_at(split);
    for ((oc, bc), cc) in o_main
        .chunks_exact_mut(LANES)
        .zip(b_main.chunks_exact(LANES))
        .zip(c_main.chunks_exact(LANES))
    {
        for i in 0..LANES {
            oc[i] += a * bc[i] * cc[i];
        }
    }
    for ((ov, bv), cv) in o_tail.iter_mut().zip(b_tail).zip(c_tail) {
        *ov += a * bv * cv;
    }
}

/// `out[j] += acc[j] * b[j]` for every `j` — the factored-MTTKRP fiber
/// fold (scale the fiber's partial sum by the `B[k][:]` row once).
#[inline]
pub fn fold_scaled(out: &mut [Value], acc: &[Value], b: &[Value]) {
    debug_assert_eq!(out.len(), acc.len(), "fold_scaled lanes must be parallel");
    debug_assert_eq!(out.len(), b.len(), "fold_scaled lanes must be parallel");
    let split = out.len() - out.len() % LANES;
    let (o_main, o_tail) = out.split_at_mut(split);
    let (a_main, a_tail) = acc.split_at(split);
    let (b_main, b_tail) = b.split_at(split);
    for ((oc, ac), bc) in o_main
        .chunks_exact_mut(LANES)
        .zip(a_main.chunks_exact(LANES))
        .zip(b_main.chunks_exact(LANES))
    {
        for i in 0..LANES {
            oc[i] += ac[i] * bc[i];
        }
    }
    for ((ov, av), bv) in o_tail.iter_mut().zip(a_tail).zip(b_tail) {
        *ov += av * bv;
    }
}

/// Indexed scatter update: `out[idx[t]] += a * vals[t]` for each `t` — the
/// sparse-B SpMM row update (one stored `A[i][k]` against the sparse row
/// `B[k][:]`, scattered into the dense output row `O[i][:]`).
///
/// `idx` and `vals` are parallel; each index is touched once per call
/// (fiber columns are strictly ascending), so chunking changes only loop
/// bookkeeping and results stay bit-for-bit equal to the scalar loop.
#[inline]
pub fn scatter_axpy(out: &mut [Value], idx: &[usize], vals: &[Value], a: Value) {
    debug_assert_eq!(idx.len(), vals.len(), "scatter_axpy lanes must be parallel");
    let split = idx.len() - idx.len() % LANES;
    for (ic, vc) in idx[..split]
        .chunks_exact(LANES)
        .zip(vals[..split].chunks_exact(LANES))
    {
        for t in 0..LANES {
            out[ic[t]] += a * vc[t];
        }
    }
    for (&i, &v) in idx[split..].iter().zip(&vals[split..]) {
        out[i] += a * v;
    }
}

/// Indexed (gather) dot product: `Σ_i vals[i] * x[idx[i]]` — the SpMV row
/// reduction and the CSC-stationary column reduction.
///
/// Runs four independent accumulator chains so consecutive FMAs do not
/// serialize on one register, combined as `(a0 + a1) + (a2 + a3)` plus the
/// scalar tail. This reassociates the sum relative to a single-accumulator
/// loop; both the CSR fast path and the generic stream path call this same
/// routine, so the two stay bit-for-bit identical to each other.
#[inline]
pub fn dot_indexed(idx: &[usize], vals: &[Value], x: &[Value]) -> Value {
    debug_assert_eq!(idx.len(), vals.len(), "dot_indexed lanes must be parallel");
    let split = idx.len() - idx.len() % 4;
    let (mut a0, mut a1, mut a2, mut a3) = (0.0, 0.0, 0.0, 0.0);
    for (ic, vc) in idx[..split]
        .chunks_exact(4)
        .zip(vals[..split].chunks_exact(4))
    {
        a0 += vc[0] * x[ic[0]];
        a1 += vc[1] * x[ic[1]];
        a2 += vc[2] * x[ic[2]];
        a3 += vc[3] * x[ic[3]];
    }
    let mut acc = (a0 + a1) + (a2 + a3);
    for (&i, &v) in idx[split..].iter().zip(&vals[split..]) {
        acc += v * x[i];
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axpy_matches_scalar_loop_at_every_length() {
        for n in 0..=2 * LANES + 3 {
            let b: Vec<Value> = (0..n).map(|i| i as Value - 3.0).collect();
            let mut out: Vec<Value> = (0..n).map(|i| (i * i) as Value).collect();
            let mut expect = out.clone();
            for (ov, bv) in expect.iter_mut().zip(&b) {
                *ov += 2.5 * bv;
            }
            axpy(&mut out, &b, 2.5);
            assert_eq!(out, expect, "axpy length {n}");
        }
    }

    #[test]
    fn axpy_mul3_matches_scalar_loop() {
        for n in [0, 1, LANES - 1, LANES, LANES + 1, 3 * LANES + 2] {
            let b: Vec<Value> = (0..n).map(|i| i as Value - 2.0).collect();
            let c: Vec<Value> = (0..n).map(|i| (i % 5) as Value).collect();
            let mut out = vec![1.0; n];
            let mut expect = out.clone();
            for ((ov, bv), cv) in expect.iter_mut().zip(&b).zip(&c) {
                *ov += -1.5 * bv * cv;
            }
            axpy_mul3(&mut out, &b, &c, -1.5);
            assert_eq!(out, expect, "axpy_mul3 length {n}");
        }
    }

    #[test]
    fn fold_scaled_matches_scalar_loop() {
        for n in [0, 1, LANES, 2 * LANES + 5] {
            let acc: Vec<Value> = (0..n).map(|i| i as Value).collect();
            let b: Vec<Value> = (0..n).map(|i| 2.0 - i as Value).collect();
            let mut out = vec![0.5; n];
            let mut expect = out.clone();
            for ((ov, av), bv) in expect.iter_mut().zip(&acc).zip(&b) {
                *ov += av * bv;
            }
            fold_scaled(&mut out, &acc, &b);
            assert_eq!(out, expect, "fold_scaled length {n}");
        }
    }

    #[test]
    fn scatter_axpy_matches_scalar_loop() {
        for n in [0, 1, LANES - 1, LANES, LANES + 1, 2 * LANES + 3] {
            let idx: Vec<usize> = (0..n).map(|i| i * 2).collect(); // distinct
            let vals: Vec<Value> = (0..n).map(|i| i as Value - 1.5).collect();
            let mut out = vec![0.25; 2 * n + 1];
            let mut expect = out.clone();
            for (&i, &v) in idx.iter().zip(&vals) {
                expect[i] += -2.0 * v;
            }
            scatter_axpy(&mut out, &idx, &vals, -2.0);
            assert_eq!(out, expect, "scatter_axpy length {n}");
        }
    }

    #[test]
    fn dot_indexed_is_exact_on_integer_lanes() {
        // Integer-valued operands sum exactly under any association, so
        // the four-chain reduction must equal the plain ordered sum.
        for n in [0, 1, 3, 4, 5, 17] {
            let idx: Vec<usize> = (0..n).map(|i| (i * 7) % 20).collect();
            let vals: Vec<Value> = (0..n).map(|i| i as Value - 4.0).collect();
            let x: Vec<Value> = (0..20).map(|i| (i % 9) as Value - 3.0).collect();
            let expect: Value = idx.iter().zip(&vals).map(|(&i, &v)| v * x[i]).sum();
            assert_eq!(dot_indexed(&idx, &vals, &x), expect, "dot length {n}");
        }
    }
}

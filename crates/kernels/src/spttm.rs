//! SpTTM: sparse tensor times dense matrix (mode-z contraction).
//!
//! "Sparse tensor times dense matrix multiplication (SpTTM) is a standard
//! building block for all tensor computations ... Tucker decomposition
//! intensively uses SpTTM" (§II). We contract over the third (z) mode:
//!
//! `Y[x][y][j] = sum_z A[x][y][z] * B[z][j]`
//!
//! with `A` sparse `(X, Y, Z)`, `B` dense `(Z, J)` and `Y` dense
//! `(X, Y, J)` (TTM outputs are near-dense along the contracted mode, so
//! dense output is the standard choice).
//!
//! The format-generic entry point is [`crate::spttm()`]; this module holds
//! the retained COO and CSF fast paths.

use crate::lanes::axpy;
use sparseflex_formats::{
    CooTensor3, CsfTensor, DenseMatrix, DenseTensor3, SparseMatrix, SparseTensor3,
};

/// SpTTM with the tensor in COO: stream nonzeros, accumulate each output
/// `(x, y)` fiber as one contiguous dense lane.
pub(crate) fn coo(a: &CooTensor3, b: &DenseMatrix) -> DenseTensor3 {
    debug_assert_eq!(a.dim_z(), b.rows(), "SpTTM contraction dim must agree");
    let (j, dy) = (b.cols(), a.dim_y());
    let mut y = DenseTensor3::zeros(a.dim_x(), dy, j);
    for (x, yy, z, v) in a.iter() {
        let base = (x * dy + yy) * j;
        axpy(&mut y.data_mut()[base..base + j], b.row(z), v);
    }
    y
}

/// SpTTM with the tensor in CSF: fiber-at-a-time accumulation. Each
/// `(x, y)` fiber accumulates its full output row before moving on, which
/// is the access pattern that makes CSF the preferred tensor ACF in
/// Table III's Crime/Uber rows. The generic stream dispatcher runs this
/// same fiber-at-a-time form over *any* tensor format's fiber stream.
pub(crate) fn csf(a: &CsfTensor, b: &DenseMatrix) -> DenseTensor3 {
    debug_assert_eq!(a.dim_z(), b.rows(), "SpTTM contraction dim must agree");
    let j = b.cols();
    let mut y = DenseTensor3::zeros(a.dim_x(), a.dim_y(), j);
    let mut acc = vec![0.0f64; j];
    for (si, &x) in a.x_fids().iter().enumerate() {
        for fi in a.x_ptr()[si]..a.x_ptr()[si + 1] {
            let yy = a.y_fids()[fi];
            acc.iter_mut().for_each(|v| *v = 0.0);
            for zi in a.y_ptr()[fi]..a.y_ptr()[fi + 1] {
                let z = a.z_fids()[zi];
                let v = a.values()[zi];
                axpy(&mut acc, b.row(z), v);
            }
            for (jj, &av) in acc.iter().enumerate() {
                if av != 0.0 {
                    y.add_assign(x, yy, jj, av);
                }
            }
        }
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparseflex_formats::CooTensor3;

    fn tensor() -> CooTensor3 {
        CooTensor3::from_quads(
            3,
            4,
            5,
            vec![
                (0, 0, 0, 1.0),
                (0, 0, 4, 2.0),
                (1, 2, 1, 3.0),
                (2, 3, 2, -1.0),
                (2, 3, 3, 4.0),
            ],
        )
        .unwrap()
    }

    fn dense_b() -> DenseMatrix {
        let data: Vec<f64> = (0..5 * 3).map(|i| (i as f64) - 7.0).collect();
        DenseMatrix::from_vec(5, 3, data).unwrap()
    }

    fn naive(a: &CooTensor3, b: &DenseMatrix) -> DenseTensor3 {
        let mut y = DenseTensor3::zeros(a.dim_x(), a.dim_y(), b.cols());
        for x in 0..a.dim_x() {
            for yy in 0..a.dim_y() {
                for jj in 0..b.cols() {
                    let mut acc = 0.0;
                    for z in 0..a.dim_z() {
                        acc += a.get(x, yy, z) * b.get(z, jj);
                    }
                    y.set(x, yy, jj, acc);
                }
            }
        }
        y
    }

    #[test]
    fn coo_matches_naive() {
        let a = tensor();
        let b = dense_b();
        assert_eq!(coo(&a, &b), naive(&a, &b));
    }

    #[test]
    fn csf_matches_coo() {
        let a = tensor();
        let b = dense_b();
        let t = CsfTensor::from_coo(&a);
        assert_eq!(csf(&t, &b), coo(&a, &b));
    }

    #[test]
    fn empty_tensor_gives_zero_output() {
        let a = CooTensor3::empty(2, 2, 5);
        let b = dense_b();
        assert_eq!(coo(&a, &b), DenseTensor3::zeros(2, 2, 3));
    }
}

//! im2col: convolution → GEMM rearrangement.
//!
//! "Like TPU, we use im2col to convert convolutions to GEMM operations"
//! (§VII-D). A convolution of a `C x H x W` input with `K` filters of
//! shape `C x R x S` becomes a GEMM of `(P) x (C*R*S)` by
//! `(C*R*S) x K`, where `P` is the number of output positions.

use sparseflex_formats::{DenseMatrix, DenseTensor3, SparseMatrix, SparseTensor3};

/// Specification of one convolution layer (matching the columns of the
/// paper's Fig. 14a table).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvLayer {
    /// Input channels `C`.
    pub in_channels: usize,
    /// Output channels `K`.
    pub out_channels: usize,
    /// Input activation height `H`.
    pub height: usize,
    /// Input activation width `W`.
    pub width: usize,
    /// Filter height `R`.
    pub filter_h: usize,
    /// Filter width `S`.
    pub filter_w: usize,
    /// Stride (the paper's case study uses stride 1 throughout).
    pub stride: usize,
    /// Symmetric zero padding.
    pub pad: usize,
}

impl ConvLayer {
    /// Output spatial dims `(out_h, out_w)`.
    pub fn out_dims(&self) -> (usize, usize) {
        let oh = (self.height + 2 * self.pad - self.filter_h) / self.stride + 1;
        let ow = (self.width + 2 * self.pad - self.filter_w) / self.stride + 1;
        (oh, ow)
    }

    /// GEMM dimensions `(M, K, N)` after im2col with the given batch:
    /// `M = batch * out_h * out_w`, `K = C*R*S`, `N = out_channels`.
    pub fn gemm_dims(&self, batch: usize) -> (usize, usize, usize) {
        let (oh, ow) = self.out_dims();
        (
            batch * oh * ow,
            self.in_channels * self.filter_h * self.filter_w,
            self.out_channels,
        )
    }
}

/// Lower one input activation tensor (`C x H x W`, dense) to the im2col
/// matrix of shape `(out_h*out_w) x (C*R*S)`.
///
/// Column ordering is channel-major then filter-row then filter-col,
/// matching the weight matrix layout produced by flattening each filter.
pub fn im2col(input: &DenseTensor3, layer: &ConvLayer) -> DenseMatrix {
    assert_eq!(input.dim_x(), layer.in_channels, "channel count mismatch");
    assert_eq!(input.dim_y(), layer.height, "height mismatch");
    assert_eq!(input.dim_z(), layer.width, "width mismatch");
    let (oh, ow) = layer.out_dims();
    let kdim = layer.in_channels * layer.filter_h * layer.filter_w;
    let mut out = DenseMatrix::zeros(oh * ow, kdim);
    for oy in 0..oh {
        for ox in 0..ow {
            let row = oy * ow + ox;
            let mut col = 0;
            for c in 0..layer.in_channels {
                for fy in 0..layer.filter_h {
                    for fx in 0..layer.filter_w {
                        let iy = oy * layer.stride + fy;
                        let ix = ox * layer.stride + fx;
                        // Padding: coordinates are offset by `pad`; any
                        // position falling outside the input reads zero.
                        let v = if iy >= layer.pad
                            && ix >= layer.pad
                            && iy - layer.pad < layer.height
                            && ix - layer.pad < layer.width
                        {
                            input.get(c, iy - layer.pad, ix - layer.pad)
                        } else {
                            0.0
                        };
                        out.set(row, col, v);
                        col += 1;
                    }
                }
            }
        }
    }
    out
}

/// Direct (sliding window) convolution used as the im2col test oracle.
/// Returns a `K x out_h x out_w` tensor.
pub fn conv2d_direct(
    input: &DenseTensor3,
    weights: &DenseMatrix, // K x (C*R*S), each row a flattened filter
    layer: &ConvLayer,
) -> DenseTensor3 {
    let (oh, ow) = layer.out_dims();
    let mut out = DenseTensor3::zeros(layer.out_channels, oh, ow);
    for k in 0..layer.out_channels {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = 0.0;
                let mut wi = 0;
                for c in 0..layer.in_channels {
                    for fy in 0..layer.filter_h {
                        for fx in 0..layer.filter_w {
                            let iy = oy * layer.stride + fy;
                            let ix = ox * layer.stride + fx;
                            if iy >= layer.pad
                                && ix >= layer.pad
                                && iy - layer.pad < layer.height
                                && ix - layer.pad < layer.width
                            {
                                acc += input.get(c, iy - layer.pad, ix - layer.pad)
                                    * weights.get(k, wi);
                            }
                            wi += 1;
                        }
                    }
                }
                out.set(k, oy, ox, acc);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::gemm;

    fn layer() -> ConvLayer {
        ConvLayer {
            in_channels: 3,
            out_channels: 4,
            height: 6,
            width: 6,
            filter_h: 3,
            filter_w: 3,
            stride: 1,
            pad: 1,
        }
    }

    fn input(layer: &ConvLayer) -> DenseTensor3 {
        let mut t = DenseTensor3::zeros(layer.in_channels, layer.height, layer.width);
        let mut v = 1.0;
        for c in 0..layer.in_channels {
            for y in 0..layer.height {
                for x in 0..layer.width {
                    if (c + y + x) % 3 == 0 {
                        t.set(c, y, x, v);
                        v += 1.0;
                    }
                }
            }
        }
        t
    }

    #[test]
    fn out_dims_with_padding() {
        let l = layer();
        assert_eq!(l.out_dims(), (6, 6)); // same-padding 3x3 stride 1
        let l2 = ConvLayer { pad: 0, ..l };
        assert_eq!(l2.out_dims(), (4, 4));
        let l3 = ConvLayer {
            stride: 2,
            pad: 0,
            ..l
        };
        assert_eq!(l3.out_dims(), (2, 2));
    }

    #[test]
    fn gemm_dims_match_paper_shapes() {
        // Fig. 14a layer 2: C=64, K=256, H=W=32, R=S=1 -> per-image GEMM
        // M = 1024, K = 64, N = 256; batch 64 multiplies M.
        let l = ConvLayer {
            in_channels: 64,
            out_channels: 256,
            height: 32,
            width: 32,
            filter_h: 1,
            filter_w: 1,
            stride: 1,
            pad: 0,
        };
        assert_eq!(l.gemm_dims(64), (64 * 32 * 32, 64, 256));
    }

    #[test]
    fn im2col_gemm_equals_direct_convolution() {
        let l = layer();
        let inp = input(&l);
        // Weights: K x (C*R*S) with a deterministic pattern.
        let kdim = l.in_channels * l.filter_h * l.filter_w;
        let wdata: Vec<f64> = (0..l.out_channels * kdim)
            .map(|i| ((i % 5) as f64) - 2.0)
            .collect();
        let weights = DenseMatrix::from_vec(l.out_channels, kdim, wdata).unwrap();

        let cols = im2col(&inp, &l);
        // GEMM: (P x K) * (K x Kout) where weightsᵀ is K x Kout.
        let o = gemm(&cols, &weights.transpose());
        let direct = conv2d_direct(&inp, &weights, &l);

        let (oh, ow) = l.out_dims();
        for k in 0..l.out_channels {
            for oy in 0..oh {
                for ox in 0..ow {
                    assert_eq!(
                        o.get(oy * ow + ox, k),
                        direct.get(k, oy, ox),
                        "mismatch at k={k} oy={oy} ox={ox}"
                    );
                }
            }
        }
    }

    #[test]
    fn im2col_unpadded() {
        let l = ConvLayer { pad: 0, ..layer() };
        let inp = input(&l);
        let cols = im2col(&inp, &l);
        assert_eq!(cols.rows(), 16);
        assert_eq!(cols.cols(), 27);
    }

    #[test]
    #[should_panic(expected = "channel count")]
    fn wrong_input_shape_panics() {
        let l = layer();
        let _ = im2col(&DenseTensor3::zeros(2, 6, 6), &l);
    }
}

//! # sparseflex-kernels
//!
//! Software reference implementations of the tensor-algebra kernels the
//! paper's accelerator targets (Fig. 2):
//!
//! - **GEMM** — dense matrix × dense matrix ([`mod@gemm`]).
//! - **SpMV** — sparse matrix × dense vector ([`mod@spmv`]).
//! - **SpMM** — sparse matrix × dense matrix in several ACFs: the COO
//!   streaming form of the paper's Alg. 1, the CSR row form, and the
//!   CSC-stationary form ([`spmm`]).
//! - **SpGEMM** — sparse × sparse (Gustavson) ([`mod@spgemm`]).
//! - **SpTTM** — sparse tensor × dense matrix ([`spttm`]).
//! - **MTTKRP** — matricized tensor times Khatri-Rao product ([`mttkrp`]).
//! - **im2col** — convolution → GEMM rearrangement used by the ResNet case
//!   study ([`mod@im2col`]).
//!
//! Every kernel has a sequential and (where profitable) a multithreaded
//! variant built on `crossbeam::scope` with disjoint output-row ownership,
//! so results are bit-identical to the sequential path. These kernels are
//! used three ways across the workspace: as the functional oracle for the
//! accelerator simulator, as the measured software baseline standing in
//! for cuBLAS/cuSPARSE/MKL (Fig. 5 and Fig. 10), and inside the examples.

#![warn(missing_docs)]

pub mod gemm;
pub mod im2col;
pub mod mttkrp;
pub mod parallel;
pub mod spgemm;
pub mod spmm;
pub mod spmv;
pub mod spttm;

pub use gemm::{gemm, gemm_parallel};
pub use im2col::{im2col, ConvLayer};
pub use mttkrp::{mttkrp_coo, mttkrp_csf};
pub use spgemm::{spgemm, spgemm_parallel};
pub use spmm::{spmm_coo_dense, spmm_csr_dense, spmm_csr_dense_parallel, spmm_dense_csc};
pub use spmv::spmv;
pub use spttm::{spttm_coo, spttm_csf};

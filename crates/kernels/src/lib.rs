//! # sparseflex-kernels
//!
//! Software reference implementations of the tensor-algebra kernels the
//! paper's accelerator targets (Fig. 2), redesigned around **format-generic
//! fiber streams**: each sparse kernel has one public entry point that
//! takes a [`MatrixData`](sparseflex_formats::MatrixData) /
//! [`TensorData`](sparseflex_formats::TensorData) operand in *any* of the
//! paper's compression formats and consumes it through the
//! `sparseflex_formats::traverse` streaming traversal — no pre-conversion
//! to a blessed format.
//!
//! - **GEMM** — dense matrix × dense matrix ([`mod@gemm`]).
//! - **SpMV** — any-format matrix × dense vector ([`spmv()`]).
//! - **SpMM** — any-format matrix × dense matrix ([`spmm()`],
//!   [`spmm_parallel()`]), or dense × any-format stationary operand
//!   ([`spmm_sparse_b()`], Fig. 6b's layout).
//! - **SpGEMM** — any-format × any-format ([`spgemm()`],
//!   [`spgemm_parallel()`]), with a selectable dataflow
//!   ([`SpgemmAlgo`]): Gustavson's dense-accumulator row algorithm or the
//!   row-wise k-way merge product ([`spgemm_rowwise()`]); both emit
//!   bit-for-bit identical CSR.
//! - **SpTTM** — any-format tensor × dense matrix ([`spttm()`]).
//! - **MTTKRP** — any-format tensor Khatri-Rao product ([`mttkrp()`]).
//! - **im2col** — convolution → GEMM rearrangement used by the ResNet case
//!   study ([`mod@im2col`]).
//!
//! Dispatch retains the tuned concrete implementations (CSR row loops,
//! COO Algorithm 1, CSF fiber kernels, CSC-stationary SpMM) as
//! specializations behind the generic entry points; formats without a
//! dedicated path stream through the same accumulation and produce
//! identical results. Shape mismatches surface as [`KernelError`] values
//! rather than panics. (The transitional per-format function zoo —
//! `spmm_csr_dense`, `mttkrp_coo`, ... — kept one release as
//! `#[deprecated]` shims has been removed; call the dispatch entry
//! points.)
//!
//! These kernels are used three ways across the workspace: as the
//! functional oracle for the accelerator simulator, as the measured
//! software baseline standing in for cuBLAS/cuSPARSE/MKL (Fig. 5 and
//! Fig. 10), and inside the examples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dispatch;
pub mod error;
pub mod gemm;
pub mod im2col;
pub mod lanes;
pub mod mttkrp;
pub mod parallel;
pub mod spgemm;
pub mod spmm;
pub mod spmv;
pub mod spttm;

pub use dispatch::{
    csr_from_stream_parallel, mttkrp, mttkrp_parallel, mttkrp_via_stream, mttkrp_via_stream_in,
    spgemm, spgemm_parallel, spgemm_parallel_with, spgemm_rowwise, spgemm_with, spmm,
    spmm_from_stream, spmm_from_stream_in, spmm_parallel, spmm_parallel_in, spmm_sparse_b,
    spmm_via_stream, spmm_via_stream_in, spmv, spmv_via_stream, spmv_via_stream_in, spttm,
    spttm_parallel, spttm_via_stream, spttm_via_stream_in, SpgemmAlgo,
};
pub use error::KernelError;
pub use gemm::{gemm, gemm_parallel};
pub use im2col::{im2col, ConvLayer};

//! The Fig. 14a ResNet-50 / CIFAR-10 convolution-layer case study.
//!
//! The paper trains ResNet-50 on CIFAR-10 and applies two L1 unstructured
//! pruning strategies ("50% per layer" and "70% global"); Fig. 14a
//! publishes the resulting per-layer input-activation and weight
//! sparsities, which is everything the EDP model consumes. We encode that
//! table verbatim and synthesize matching operands.

use crate::synth::random_matrix;
use sparseflex_formats::CooMatrix;
use sparseflex_kernels::ConvLayer;

/// Pruning strategy of the §VII-D case study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PruningStrategy {
    /// Unpruned network (activation sparsity from ReLU only).
    Normal,
    /// L1 pruning of 50% of the weights in every layer (0.29% acc. loss).
    LayerPrune50,
    /// L1 pruning of 70% of the weights globally (0.74% acc. loss).
    GlobalPrune70,
}

impl PruningStrategy {
    /// All three strategies, in Fig. 14 order.
    pub const fn all() -> [PruningStrategy; 3] {
        [
            PruningStrategy::Normal,
            PruningStrategy::LayerPrune50,
            PruningStrategy::GlobalPrune70,
        ]
    }

    /// Short name for CSV output.
    pub const fn name(self) -> &'static str {
        match self {
            PruningStrategy::Normal => "normal",
            PruningStrategy::LayerPrune50 => "prune50_layer",
            PruningStrategy::GlobalPrune70 => "prune70_global",
        }
    }
}

/// One row of the Fig. 14a table. Sparsities are fractions of **zeros**
/// (the paper's percentages / 100).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResNetLayer {
    /// Layer id (1-8 as in Fig. 14a).
    pub id: usize,
    /// Convolution geometry.
    pub conv: ConvLayer,
    /// Input-activation sparsity per strategy `[normal, 50%, 70%]`.
    pub act_sparsity: [f64; 3],
    /// Weight sparsity per strategy `[normal, 50%, 70%]`.
    pub weight_sparsity: [f64; 3],
}

const fn conv(c: usize, k: usize, hw: usize, rs: usize) -> ConvLayer {
    ConvLayer {
        in_channels: c,
        out_channels: k,
        height: hw,
        width: hw,
        filter_h: rs,
        filter_w: rs,
        stride: 1,
        // Same-padding for 3x3 filters, none for 1x1 — keeps output H,W
        // equal to input H,W as ResNet blocks do.
        pad: if rs == 3 { 1 } else { 0 },
    }
}

/// The eight convolution layers of Fig. 14a.
pub const RESNET_LAYERS: [ResNetLayer; 8] = [
    ResNetLayer {
        id: 1,
        conv: conv(3, 64, 32, 3),
        act_sparsity: [0.0, 0.0, 0.0],
        weight_sparsity: [0.0, 0.500, 0.454],
    },
    ResNetLayer {
        id: 2,
        conv: conv(64, 256, 32, 1),
        act_sparsity: [0.566, 0.555, 0.550],
        weight_sparsity: [0.0, 0.500, 0.748],
    },
    ResNetLayer {
        id: 3,
        conv: conv(128, 512, 16, 1),
        act_sparsity: [0.631, 0.592, 0.604],
        weight_sparsity: [0.0, 0.500, 0.634],
    },
    ResNetLayer {
        id: 4,
        conv: conv(128, 128, 16, 3),
        act_sparsity: [0.526, 0.520, 0.523],
        weight_sparsity: [0.0, 0.500, 0.353],
    },
    ResNetLayer {
        id: 5,
        conv: conv(1024, 256, 8, 1),
        act_sparsity: [0.602, 0.570, 0.598],
        weight_sparsity: [0.0, 0.500, 0.499],
    },
    ResNetLayer {
        id: 6,
        conv: conv(256, 256, 8, 3),
        act_sparsity: [0.594, 0.565, 0.570],
        weight_sparsity: [0.0, 0.500, 0.383],
    },
    ResNetLayer {
        id: 7,
        conv: conv(512, 2048, 4, 1),
        act_sparsity: [0.640, 0.610, 0.410],
        weight_sparsity: [0.0, 0.500, 0.882],
    },
    ResNetLayer {
        id: 8,
        conv: conv(512, 512, 4, 3),
        act_sparsity: [0.492, 0.478, 0.436],
        weight_sparsity: [0.0, 0.500, 0.984],
    },
];

impl ResNetLayer {
    /// Index into the sparsity arrays for a strategy.
    fn sidx(strategy: PruningStrategy) -> usize {
        match strategy {
            PruningStrategy::Normal => 0,
            PruningStrategy::LayerPrune50 => 1,
            PruningStrategy::GlobalPrune70 => 2,
        }
    }

    /// Input-activation density (1 - sparsity) under a strategy.
    pub fn act_density(&self, strategy: PruningStrategy) -> f64 {
        1.0 - self.act_sparsity[Self::sidx(strategy)]
    }

    /// Weight density (1 - sparsity) under a strategy.
    pub fn weight_density(&self, strategy: PruningStrategy) -> f64 {
        1.0 - self.weight_sparsity[Self::sidx(strategy)]
    }

    /// im2col GEMM dims `(M, K, N)` for the given batch (the paper uses
    /// batch 64).
    pub fn gemm_dims(&self, batch: usize) -> (usize, usize, usize) {
        self.conv.gemm_dims(batch)
    }

    /// Synthesize the im2col'd activation matrix `M x K` at this layer's
    /// activation sparsity.
    pub fn generate_activations(
        &self,
        batch: usize,
        strategy: PruningStrategy,
        seed: u64,
    ) -> CooMatrix {
        let (m, k, _) = self.gemm_dims(batch);
        let nnz = ((m as f64 * k as f64) * self.act_density(strategy)).round() as usize;
        random_matrix(m, k, nnz.min(m * k), seed)
    }

    /// Synthesize the weight matrix `K x N` at this layer's weight
    /// sparsity.
    pub fn generate_weights(&self, strategy: PruningStrategy, seed: u64) -> CooMatrix {
        let (_, k, n) = self.gemm_dims(1);
        let nnz = ((k as f64 * n as f64) * self.weight_density(strategy)).round() as usize;
        random_matrix(k, n, nnz.min(k * n), seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparseflex_formats::SparseMatrix;

    #[test]
    fn eight_layers_with_paper_geometry() {
        assert_eq!(RESNET_LAYERS.len(), 8);
        let l7 = &RESNET_LAYERS[6];
        assert_eq!(l7.conv.in_channels, 512);
        assert_eq!(l7.conv.out_channels, 2048);
        assert_eq!(l7.conv.height, 4);
        assert_eq!(l7.conv.filter_h, 1);
    }

    #[test]
    fn layer_prune_is_uniform_half() {
        for l in &RESNET_LAYERS {
            assert_eq!(l.weight_sparsity[1], 0.5, "layer {} not 50% pruned", l.id);
        }
    }

    #[test]
    fn global_prune_concentrates_in_late_layers() {
        // Fig. 14a: "with global pruning, convolution layers 7 and 8 have
        // significantly higher weight sparsity than the other layers."
        let late_min = RESNET_LAYERS[6].weight_sparsity[2].min(RESNET_LAYERS[7].weight_sparsity[2]);
        for l in &RESNET_LAYERS[..6] {
            assert!(
                l.weight_sparsity[2] < late_min,
                "layer {} sparsity {} >= late-layer min {}",
                l.id,
                l.weight_sparsity[2],
                late_min
            );
        }
    }

    #[test]
    fn gemm_dims_scale_with_batch() {
        let l2 = &RESNET_LAYERS[1];
        let (m1, k, n) = l2.gemm_dims(1);
        let (m64, k64, n64) = l2.gemm_dims(64);
        assert_eq!(m64, 64 * m1);
        assert_eq!((k, n), (k64, n64));
        assert_eq!(k, 64); // C*R*S = 64*1*1
        assert_eq!(n, 256);
    }

    #[test]
    fn generated_weights_match_target_density() {
        let l = &RESNET_LAYERS[4]; // 1024*256 weights, big enough to check
        let w = l.generate_weights(PruningStrategy::GlobalPrune70, 9);
        let target = l.weight_density(PruningStrategy::GlobalPrune70);
        let got = w.density();
        assert!(
            (got - target).abs() < 0.01,
            "weight density {got} vs {target}"
        );
    }

    #[test]
    fn normal_strategy_weights_are_dense() {
        let l = &RESNET_LAYERS[0];
        let w = l.generate_weights(PruningStrategy::Normal, 1);
        assert_eq!(w.density(), 1.0);
    }

    #[test]
    fn activations_generate_small_batch() {
        let l = &RESNET_LAYERS[7]; // 4x4 spatial keeps this cheap
        let a = l.generate_activations(2, PruningStrategy::Normal, 3);
        let (m, k, _) = l.gemm_dims(2);
        assert_eq!(a.rows(), m);
        assert_eq!(a.cols(), k);
        let target = l.act_density(PruningStrategy::Normal);
        assert!((a.density() - target).abs() < 0.02);
    }
}

//! The Table III workload suite.
//!
//! Thirteen workloads spanning six orders of magnitude of density — ten
//! matrices (SuiteSparse + DeepBench) and three 3-D tensors (BrainQ +
//! FROSTT). Dimensions, nonzero counts and density percentages are taken
//! verbatim from Table III of the paper; the operands themselves are
//! regenerated synthetically (see the crate docs for why that substitution
//! is sound).

use crate::synth::{random_dense_matrix, random_matrix, random_tensor3};
use sparseflex_formats::{CooMatrix, CooTensor3, DenseMatrix};

/// Which kernel(s) a workload participates in (the shading colours of
/// Table III: blue = SpGEMM, grey = SpMM, tan = SpTTM, yellow = MTTKRP).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelClass {
    /// Sparse × sparse matrix multiply.
    SpGemm,
    /// Sparse × dense matrix multiply.
    SpMm,
    /// Sparse tensor × dense matrix.
    SpTtm,
    /// Matricized tensor times Khatri-Rao product.
    Mttkrp,
}

impl KernelClass {
    /// Short name for CSV output.
    pub const fn name(self) -> &'static str {
        match self {
            KernelClass::SpGemm => "SpGEMM",
            KernelClass::SpMm => "SpMM",
            KernelClass::SpTtm => "SpTTM",
            KernelClass::Mttkrp => "MTTKRP",
        }
    }
}

/// Shape of a workload's sparse operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadShape {
    /// 2-D operand `rows x cols`.
    Matrix {
        /// Rows (`M`).
        rows: usize,
        /// Columns (`K`).
        cols: usize,
    },
    /// 3-D operand `x_dim x y_dim x z_dim`.
    Tensor {
        /// First mode.
        x: usize,
        /// Second mode.
        y: usize,
        /// Third mode.
        z: usize,
    },
}

/// One row of Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadSpec {
    /// Workload name as printed in the paper.
    pub name: &'static str,
    /// Source dataset (`suitesparse`, `deepbench`, `frostt`, `brainq`).
    pub source: &'static str,
    /// Operand shape.
    pub shape: WorkloadShape,
    /// Nonzero count (paper's reported value).
    pub nnz: usize,
}

/// The thirteen Table III workloads.
pub const TABLE_III: [WorkloadSpec; 13] = [
    WorkloadSpec {
        name: "journals",
        source: "suitesparse",
        shape: WorkloadShape::Matrix {
            rows: 124,
            cols: 124,
        },
        nnz: 12_068,
    },
    WorkloadSpec {
        name: "bibd_17_8",
        source: "suitesparse",
        shape: WorkloadShape::Matrix {
            rows: 171,
            cols: 92_000,
        },
        nnz: 3_300_000,
    },
    WorkloadSpec {
        name: "dendrimer",
        source: "suitesparse",
        shape: WorkloadShape::Matrix {
            rows: 730,
            cols: 730,
        },
        nnz: 63_000,
    },
    WorkloadSpec {
        name: "speech1",
        source: "deepbench",
        shape: WorkloadShape::Matrix {
            rows: 11_000,
            cols: 3_600,
        },
        nnz: 3_900_000,
    },
    WorkloadSpec {
        name: "speech2",
        source: "deepbench",
        shape: WorkloadShape::Matrix {
            rows: 7_700,
            cols: 2_600,
        },
        nnz: 1_000_000,
    },
    WorkloadSpec {
        name: "nd3k",
        source: "suitesparse",
        shape: WorkloadShape::Matrix {
            rows: 9_000,
            cols: 9_000,
        },
        nnz: 3_300_000,
    },
    WorkloadSpec {
        name: "cavity14",
        source: "suitesparse",
        shape: WorkloadShape::Matrix {
            rows: 2_600,
            cols: 2_600,
        },
        nnz: 76_000,
    },
    WorkloadSpec {
        name: "model3",
        source: "suitesparse",
        shape: WorkloadShape::Matrix {
            rows: 1_600,
            cols: 4_600,
        },
        nnz: 24_000,
    },
    WorkloadSpec {
        name: "cat_ears_4_4",
        source: "suitesparse",
        shape: WorkloadShape::Matrix {
            rows: 5_200,
            cols: 13_200,
        },
        nnz: 40_000,
    },
    WorkloadSpec {
        name: "m3plates",
        source: "suitesparse",
        shape: WorkloadShape::Matrix {
            rows: 11_000,
            cols: 11_000,
        },
        nnz: 6_600,
    },
    WorkloadSpec {
        name: "BrainQ",
        source: "brainq",
        shape: WorkloadShape::Tensor {
            x: 60,
            y: 70_000,
            z: 9,
        },
        nnz: 11_000_000,
    },
    WorkloadSpec {
        name: "Crime",
        source: "frostt",
        shape: WorkloadShape::Tensor {
            x: 6_200,
            y: 24,
            z: 2_500,
        },
        nnz: 5_200_000,
    },
    WorkloadSpec {
        name: "Uber",
        source: "frostt",
        shape: WorkloadShape::Tensor {
            x: 4_400,
            y: 1_100,
            z: 1_700,
        },
        nnz: 3_300_000,
    },
];

impl WorkloadSpec {
    /// Look up a Table III workload by name.
    pub fn by_name(name: &str) -> Option<&'static WorkloadSpec> {
        TABLE_III.iter().find(|w| w.name == name)
    }

    /// Density in `[0, 1]`.
    pub fn density(&self) -> f64 {
        self.nnz as f64 / self.volume() as f64
    }

    /// Total element count of the operand.
    pub fn volume(&self) -> u64 {
        match self.shape {
            WorkloadShape::Matrix { rows, cols } => rows as u64 * cols as u64,
            WorkloadShape::Tensor { x, y, z } => x as u64 * y as u64 * z as u64,
        }
    }

    /// Kernel classes this workload participates in: matrices run SpGEMM
    /// and SpMM; tensors run SpTTM and MTTKRP (Table III shading).
    pub fn kernels(&self) -> &'static [KernelClass] {
        match self.shape {
            WorkloadShape::Matrix { .. } => &[KernelClass::SpGemm, KernelClass::SpMm],
            WorkloadShape::Tensor { .. } => &[KernelClass::SpTtm, KernelClass::Mttkrp],
        }
    }

    /// Is this one of the three tensor workloads?
    pub fn is_tensor(&self) -> bool {
        matches!(self.shape, WorkloadShape::Tensor { .. })
    }

    /// Dimensions of the second (factor) operand: "the factorizing
    /// matrices that are multiplied with the tensors are generalized to
    /// have dimensions of K by (M/2)" (§VII-A). For a matrix workload
    /// `M x K` the factor is `K x M/2`; for a tensor the contracted mode
    /// plays K and the first mode plays M.
    pub fn factor_dims(&self) -> (usize, usize) {
        match self.shape {
            WorkloadShape::Matrix { rows, cols } => (cols, (rows / 2).max(1)),
            WorkloadShape::Tensor { x, z, .. } => (z, (x / 2).max(1)),
        }
    }

    /// Generate the sparse matrix operand (matrix workloads only).
    pub fn generate_matrix(&self, seed: u64) -> Option<CooMatrix> {
        match self.shape {
            WorkloadShape::Matrix { rows, cols } => Some(random_matrix(rows, cols, self.nnz, seed)),
            WorkloadShape::Tensor { .. } => None,
        }
    }

    /// Generate the sparse tensor operand (tensor workloads only).
    pub fn generate_tensor(&self, seed: u64) -> Option<CooTensor3> {
        match self.shape {
            WorkloadShape::Tensor { x, y, z } => Some(random_tensor3(x, y, z, self.nnz, seed)),
            WorkloadShape::Matrix { .. } => None,
        }
    }

    /// Generate the dense factor operand (for SpMM / SpTTM / MTTKRP).
    pub fn generate_factor(&self, seed: u64) -> DenseMatrix {
        let (r, c) = self.factor_dims();
        random_dense_matrix(r, c, seed)
    }

    /// Generate the sparse second operand for SpGEMM (same density region
    /// as the first operand, per the Fig. 5 methodology).
    pub fn generate_sparse_factor(&self, seed: u64) -> Option<CooMatrix> {
        match self.shape {
            WorkloadShape::Matrix { .. } => {
                let (r, c) = self.factor_dims();
                let nnz = ((r as f64 * c as f64) * self.density()).round() as usize;
                let nnz = nnz.min(r * c).max(1);
                Some(random_matrix(r, c, nnz, seed))
            }
            WorkloadShape::Tensor { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparseflex_formats::{SparseMatrix, SparseTensor3};

    #[test]
    fn densities_match_paper_column() {
        // Table III's density column (in percent).
        let expected: [(&str, f64); 13] = [
            ("journals", 78.5),
            ("bibd_17_8", 20.9),
            ("dendrimer", 11.8),
            ("speech1", 10.0),
            ("speech2", 5.0),
            ("nd3k", 4.1),
            ("cavity14", 1.1),
            ("model3", 0.32),
            ("cat_ears_4_4", 0.057),
            ("m3plates", 0.0054),
            ("BrainQ", 29.1),
            ("Crime", 1.5),
            ("Uber", 0.039),
        ];
        for (name, pct) in expected {
            let w = WorkloadSpec::by_name(name).unwrap();
            let got = w.density() * 100.0;
            let tol = pct * 0.15 + 0.002; // paper rounds dims and nnz
            assert!(
                (got - pct).abs() < tol,
                "{name}: density {got:.4}% vs paper {pct}% (tol {tol:.4})"
            );
        }
    }

    #[test]
    fn kernel_classes_follow_shading() {
        let j = WorkloadSpec::by_name("journals").unwrap();
        assert_eq!(j.kernels(), &[KernelClass::SpGemm, KernelClass::SpMm]);
        let u = WorkloadSpec::by_name("Uber").unwrap();
        assert_eq!(u.kernels(), &[KernelClass::SpTtm, KernelClass::Mttkrp]);
        assert!(u.is_tensor());
    }

    #[test]
    fn factor_dims_follow_k_by_m_half() {
        let s = WorkloadSpec::by_name("speech2").unwrap();
        assert_eq!(s.factor_dims(), (2_600, 3_850));
        let u = WorkloadSpec::by_name("Uber").unwrap();
        assert_eq!(u.factor_dims(), (1_700, 2_200));
    }

    #[test]
    fn small_matrix_generation_matches_spec() {
        let j = WorkloadSpec::by_name("journals").unwrap();
        let m = j.generate_matrix(1).unwrap();
        assert_eq!(m.rows(), 124);
        assert_eq!(m.cols(), 124);
        assert_eq!(m.nnz(), 12_068);
        assert!(j.generate_tensor(1).is_none());
    }

    #[test]
    fn sparse_factor_density_tracks_operand() {
        let c = WorkloadSpec::by_name("cavity14").unwrap();
        let f = c.generate_sparse_factor(2).unwrap();
        let d_op = c.density();
        let d_f = f.density();
        assert!(
            (d_f - d_op).abs() / d_op < 0.05,
            "factor density {d_f} vs {d_op}"
        );
    }

    #[test]
    fn tensor_generation_small_slice() {
        // Only test shape plumbing with a scaled-down spec to keep tests
        // fast; the real specs are exercised by the bench binaries.
        let spec = WorkloadSpec {
            name: "mini",
            source: "test",
            shape: WorkloadShape::Tensor {
                x: 30,
                y: 20,
                z: 10,
            },
            nnz: 500,
        };
        let t = spec.generate_tensor(3).unwrap();
        assert_eq!(t.nnz(), 500);
        assert_eq!(t.shape(), (30, 20, 10));
        assert!(spec.generate_matrix(3).is_none());
    }

    #[test]
    fn by_name_misses_gracefully() {
        assert!(WorkloadSpec::by_name("nonexistent").is_none());
    }

    #[test]
    fn all_names_unique() {
        let mut names: Vec<_> = TABLE_III.iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), TABLE_III.len());
    }
}

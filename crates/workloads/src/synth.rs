//! Core seeded random sparse generators.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sparseflex_formats::{CooMatrix, CooTensor3, DenseMatrix};
use std::collections::HashSet;

/// Draw a nonzero value: uniform magnitude in `[0.5, 1.5)` with random
/// sign, so no draw is ever exactly zero and accumulations stay well
/// conditioned.
fn nonzero_value(rng: &mut StdRng) -> f64 {
    let mag = rng.gen_range(0.5..1.5);
    if rng.gen_bool(0.5) {
        mag
    } else {
        -mag
    }
}

/// Sample exactly `k` distinct indices from `0..total` (Floyd's
/// algorithm, O(k) expected time and memory).
fn sample_distinct(total: u64, k: u64, rng: &mut StdRng) -> Vec<u64> {
    assert!(k <= total, "cannot sample {k} distinct from {total}");
    let mut chosen: HashSet<u64> = HashSet::with_capacity(k as usize);
    for j in (total - k)..total {
        let t = rng.gen_range(0..=j);
        if !chosen.insert(t) {
            chosen.insert(j);
        }
    }
    let mut v: Vec<u64> = chosen.into_iter().collect();
    v.sort_unstable();
    v
}

/// Uniform random sparse matrix with **exactly** `nnz` nonzeros.
pub fn random_matrix(rows: usize, cols: usize, nnz: usize, seed: u64) -> CooMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let total = (rows as u64) * (cols as u64);
    let flats = sample_distinct(total, nnz as u64, &mut rng);
    let triplets: Vec<(usize, usize, f64)> = flats
        .into_iter()
        .map(|f| {
            (
                (f / cols as u64) as usize,
                (f % cols as u64) as usize,
                nonzero_value(&mut rng),
            )
        })
        .collect();
    CooMatrix::from_sorted_triplets(rows, cols, triplets).expect("sampled flats are sorted")
}

/// Uniform random sparse matrix with **expected** density `density`
/// (Bernoulli per position — cheaper than exact sampling for dense-ish
/// patterns, and the binomial nnz concentrates tightly at this scale).
pub fn random_matrix_density(rows: usize, cols: usize, density: f64, seed: u64) -> CooMatrix {
    assert!((0.0..=1.0).contains(&density), "density must be in [0,1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let expected = (rows as f64 * cols as f64 * density) as usize;
    let mut triplets = Vec::with_capacity(expected + expected / 8 + 16);
    for r in 0..rows {
        for c in 0..cols {
            if rng.gen_bool(density) {
                triplets.push((r, c, nonzero_value(&mut rng)));
            }
        }
    }
    CooMatrix::from_sorted_triplets(rows, cols, triplets).expect("scan order is sorted")
}

/// Fully dense random matrix.
pub fn random_dense_matrix(rows: usize, cols: usize, seed: u64) -> DenseMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let data: Vec<f64> = (0..rows * cols).map(|_| nonzero_value(&mut rng)).collect();
    DenseMatrix::from_vec(rows, cols, data).expect("length matches by construction")
}

/// Uniform random sparse 3-D tensor with exactly `nnz` nonzeros.
pub fn random_tensor3(dx: usize, dy: usize, dz: usize, nnz: usize, seed: u64) -> CooTensor3 {
    let mut rng = StdRng::seed_from_u64(seed);
    let total = (dx as u64) * (dy as u64) * (dz as u64);
    let flats = sample_distinct(total, nnz as u64, &mut rng);
    let quads: Vec<(usize, usize, usize, f64)> = flats
        .into_iter()
        .map(|f| {
            let f = f as usize;
            let x = f / (dy * dz);
            let y = (f / dz) % dy;
            let z = f % dz;
            (x, y, z, nonzero_value(&mut rng))
        })
        .collect();
    CooTensor3::from_quads(dx, dy, dz, quads).expect("sampled coordinates are in-bounds")
}

/// Uniform random sparse tensor with expected density.
pub fn random_tensor3_density(
    dx: usize,
    dy: usize,
    dz: usize,
    density: f64,
    seed: u64,
) -> CooTensor3 {
    assert!((0.0..=1.0).contains(&density), "density must be in [0,1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut quads = Vec::new();
    for x in 0..dx {
        for y in 0..dy {
            for z in 0..dz {
                if rng.gen_bool(density) {
                    quads.push((x, y, z, nonzero_value(&mut rng)));
                }
            }
        }
    }
    CooTensor3::from_quads(dx, dy, dz, quads).expect("scan coordinates are in-bounds")
}

/// Banded matrix: `bands` diagonals centred on the main diagonal, fully
/// populated — the DIA-favourable structure used by the structured-format
/// ablation benches.
pub fn banded_matrix(n: usize, bands: usize, seed: u64) -> CooMatrix {
    assert!(
        bands % 2 == 1,
        "bands must be odd (symmetric around main diagonal)"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let half = (bands / 2) as isize;
    let mut triplets = Vec::new();
    for r in 0..n {
        for k in -half..=half {
            let c = r as isize + k;
            if c >= 0 && (c as usize) < n {
                triplets.push((r, c as usize, nonzero_value(&mut rng)));
            }
        }
    }
    CooMatrix::from_triplets(n, n, triplets).expect("band coordinates are in-bounds")
}

/// Block-sparse matrix: a fraction `block_density` of aligned
/// `block x block` tiles are fully populated — the BSR-favourable
/// structure (e.g. structured pruning) for ablation benches.
pub fn blocked_matrix(
    rows: usize,
    cols: usize,
    block: usize,
    block_density: f64,
    seed: u64,
) -> CooMatrix {
    assert!(block > 0, "block must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut triplets = Vec::new();
    for br in 0..rows.div_ceil(block) {
        for bc in 0..cols.div_ceil(block) {
            if rng.gen_bool(block_density) {
                for r in br * block..((br + 1) * block).min(rows) {
                    for c in bc * block..((bc + 1) * block).min(cols) {
                        triplets.push((r, c, nonzero_value(&mut rng)));
                    }
                }
            }
        }
    }
    CooMatrix::from_triplets(rows, cols, triplets).expect("block coordinates are in-bounds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparseflex_formats::{SparseMatrix, SparseTensor3};

    #[test]
    fn exact_nnz_is_exact() {
        for nnz in [0, 1, 10, 500] {
            let m = random_matrix(50, 40, nnz, 42);
            assert_eq!(m.nnz(), nnz);
        }
    }

    #[test]
    fn exact_nnz_full_matrix() {
        let m = random_matrix(10, 10, 100, 7);
        assert_eq!(m.nnz(), 100);
        assert_eq!(m.density(), 1.0);
    }

    #[test]
    fn seeded_generation_is_deterministic() {
        let a = random_matrix(30, 30, 77, 123);
        let b = random_matrix(30, 30, 77, 123);
        assert_eq!(a, b);
        let c = random_matrix(30, 30, 77, 124);
        assert_ne!(a, c);
    }

    #[test]
    fn density_generator_concentrates() {
        let m = random_matrix_density(200, 200, 0.1, 9);
        let d = m.density();
        assert!((0.07..0.13).contains(&d), "density {d} far from 0.1");
    }

    #[test]
    fn no_zero_values_emitted() {
        let m = random_matrix(40, 40, 300, 5);
        assert!(m.values().iter().all(|v| *v != 0.0));
        assert!(m.values().iter().all(|v| v.abs() >= 0.5 && v.abs() < 1.5));
    }

    #[test]
    fn tensor_exact_nnz() {
        let t = random_tensor3(20, 20, 20, 456, 11);
        assert_eq!(t.nnz(), 456);
        assert_eq!(t.shape(), (20, 20, 20));
    }

    #[test]
    fn tensor_density_concentrates() {
        let t = random_tensor3_density(30, 30, 30, 0.05, 13);
        let d = t.density();
        assert!((0.03..0.07).contains(&d), "density {d} far from 0.05");
    }

    #[test]
    fn banded_has_expected_diagonals() {
        use sparseflex_formats::DiaMatrix;
        let m = banded_matrix(32, 5, 3);
        let dia = DiaMatrix::from_coo(&m);
        assert_eq!(dia.num_diagonals(), 5);
        // Main diagonal fully populated.
        for i in 0..32 {
            assert_ne!(m.get(i, i), 0.0);
        }
    }

    #[test]
    fn blocked_matrix_block_structure() {
        use sparseflex_formats::BsrMatrix;
        let m = blocked_matrix(64, 64, 8, 0.2, 21);
        let bsr = BsrMatrix::from_coo(&m, 8, 8).unwrap();
        // Every stored block must be completely full (no padding).
        assert_eq!(bsr.padding_ratio(), 0.0);
    }

    #[test]
    fn dense_matrix_values_nonzero() {
        let m = random_dense_matrix(17, 19, 2);
        assert_eq!(m.count_nonzeros(), 17 * 19);
    }

    #[test]
    #[should_panic(expected = "bands must be odd")]
    fn banded_rejects_even_band_count() {
        let _ = banded_matrix(10, 4, 0);
    }
}

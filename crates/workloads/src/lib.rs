//! # sparseflex-workloads
//!
//! Seeded synthetic workload generators mirroring the paper's evaluation
//! suites (§VII-A, Table III, Fig. 14a).
//!
//! The paper evaluates on SuiteSparse, DeepBench, FROSTT and BrainQ
//! datasets. Those files are not redistributable here, so this crate
//! generates uniform-random sparse operands with **identical dimensions
//! and nonzero counts** — a substitution the paper itself justifies: its
//! models "assume a uniform random distribution of the dense values"
//! (§VI), and every downstream quantity (storage bits, streaming cycles,
//! DRAM energy) depends only on `(dims, nnz, dtype)` for unstructured
//! formats.
//!
//! Modules:
//! - [`synth`] — core random generators (exact-nnz and Bernoulli-density),
//!   plus structured patterns (banded, blocked) for the structured-format
//!   extension benches.
//! - [`suite`] — the 13 Table III workloads with their kernel classes.
//! - [`resnet`] — the Fig. 14a ResNet-50/CIFAR-10 convolution layers and
//!   the three pruning strategies of the §VII-D case study.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod resnet;
pub mod suite;
pub mod synth;

pub use resnet::{PruningStrategy, ResNetLayer, RESNET_LAYERS};
pub use suite::{KernelClass, WorkloadShape, WorkloadSpec, TABLE_III};
pub use synth::{
    banded_matrix, blocked_matrix, random_dense_matrix, random_matrix, random_matrix_density,
    random_tensor3, random_tensor3_density,
};

//! The multi-tenant job service: admission control, weighted-fair
//! scheduling, and a work-stealing worker pool of virtual accelerator
//! instances.
//!
//! Submission path: a wire frame (or an in-process [`WireJob`]) passes
//! **admission control** — a bounded central queue plus a per-tenant
//! in-flight cap, both rejecting with typed [`SubmitError`]s so callers
//! get backpressure instead of unbounded buffering. Admitted jobs land
//! in their tenant's priority queues.
//!
//! Dispatch is **stride scheduling** (weighted fair queueing in virtual
//! time): each tenant advances a `pass` value by `STRIDE_SCALE / weight`
//! per dispatched job, and the scheduler always serves the backlogged
//! tenant with the smallest pass — so a weight-8 tenant receives ~8× the
//! dispatch rate of a weight-1 tenant while both are backlogged, and no
//! backlogged tenant starves (its pass eventually becomes the minimum).
//! Within a tenant, High beats Normal beats Low.
//!
//! Workers are persistent threads, each modeling one virtual accelerator
//! instance with its own deque: a worker pulls a batch from the central
//! queues, executes the first job, and parks the rest in its deque; idle
//! workers **steal** from the back of siblings' deques before sleeping,
//! so one worker's burst spreads across the pool.
//!
//! The pool shares one planner whose [`PlanCache`] is sharded by key
//! hash ([`PlanCache::with_shards`]), so concurrent workers planning
//! disjoint shapes do not serialize on a single cache lock.

use crate::wire::{self, WireError, WireJob, WireResult};
use sparseflex_core::{BatchJob, CacheCounters, FlexSystem, PlanCache, RunError, StoredTrace};
use sparseflex_formats::SparseMatrix;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

/// Poison-tolerant lock acquisition. A worker that panics mid-job
/// poisons whatever it held, but every structure guarded here keeps its
/// invariants across each critical section (counters are monotonic,
/// queues structurally valid after every push/pop), so the right
/// response is to recover the data — not to cascade the panic into
/// every other worker and waiter.
fn lock_clean<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Scheduling priority of a job within its tenant's queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Priority {
    /// Served before Normal and Low within the tenant.
    High = 0,
    /// The default service class.
    Normal = 1,
    /// Served only when the tenant has nothing more urgent.
    Low = 2,
}

/// Stride-scheduling scale: per-dispatch pass increment is
/// `STRIDE_SCALE / weight`, so weights up to `STRIDE_SCALE` resolve to
/// distinct rates.
const STRIDE_SCALE: u64 = 1 << 20;

/// Typed admission-control rejections. Every variant is backpressure a
/// well-behaved client can act on (retry later, shed load, raise caps).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The central queue is at capacity; retry after completions drain.
    QueueFull {
        /// The configured queue bound that was hit.
        capacity: usize,
    },
    /// The tenant already has its maximum jobs in flight
    /// (queued + executing).
    TenantBusy {
        /// The rejected tenant.
        tenant: u32,
        /// Jobs the tenant currently has in flight.
        in_flight: usize,
        /// The per-tenant cap that was hit.
        cap: usize,
    },
    /// The submitted bytes are not a valid job frame.
    Wire(WireError),
    /// The service is shutting down and accepts no new work.
    Shutdown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { capacity } => {
                write!(f, "submission queue full ({capacity} jobs)")
            }
            SubmitError::TenantBusy {
                tenant,
                in_flight,
                cap,
            } => write!(
                f,
                "tenant {tenant} at its in-flight cap ({in_flight}/{cap})"
            ),
            SubmitError::Wire(e) => write!(f, "malformed job frame: {e}"),
            SubmitError::Shutdown => write!(f, "service is shut down"),
        }
    }
}

impl std::error::Error for SubmitError {}

impl From<WireError> for SubmitError {
    fn from(e: WireError) -> Self {
        SubmitError::Wire(e)
    }
}

/// Why a completed job failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The accelerator run itself failed.
    Run(RunError),
    /// Encoding the result frame failed.
    Wire(WireError),
    /// The service shut down before the job was executed.
    Shutdown,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Run(e) => write!(f, "job execution failed: {e}"),
            ServeError::Wire(e) => write!(f, "result encoding failed: {e}"),
            ServeError::Shutdown => write!(f, "service shut down before the job ran"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Failure to bring the worker pool up: the OS refused to create a
/// worker thread. Any workers spawned before the failure are shut down
/// and joined before this is returned.
#[derive(Debug)]
pub struct StartError {
    /// Index of the worker whose thread could not be created.
    pub worker: usize,
    /// The underlying spawn failure.
    pub source: std::io::Error,
}

impl std::fmt::Display for StartError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "could not spawn serve worker {}: {}",
            self.worker, self.source
        )
    }
}

impl std::error::Error for StartError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// A completed job's payload: the encoded result frame plus scheduling
/// telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// Service-assigned job id.
    pub job_id: u64,
    /// The submitting tenant.
    pub tenant: u32,
    /// Encoded [`WireResult`] frame (decode with
    /// [`wire::decode_result`]).
    pub result_frame: Vec<u8>,
    /// Modeled accelerator cycles the job waited in queues (wall time
    /// from admission to dispatch × the accelerator clock).
    pub queue_wait_cycles: u64,
    /// Global dispatch sequence number (0 = dispatched first): the
    /// deterministic record of scheduling order fairness tests assert
    /// on.
    pub dispatch_seq: u64,
    /// Worker (virtual accelerator instance) that executed the job.
    pub worker: usize,
    /// True when the executing worker stole the job from a sibling's
    /// deque.
    pub stolen: bool,
}

/// One-shot completion slot shared between worker and waiter.
type Oneshot = Arc<(Mutex<Option<Result<JobOutcome, ServeError>>>, Condvar)>;

/// Handle to one submitted job; [`wait`](JobTicket::wait) blocks until
/// the service completes (or abandons) it.
#[derive(Debug)]
pub struct JobTicket {
    /// Service-assigned job id (also stamped into the result frame).
    pub job_id: u64,
    slot: Oneshot,
}

impl JobTicket {
    /// Block until the job completes; returns the outcome or the typed
    /// failure. Abandoned jobs (service dropped) resolve to
    /// [`ServeError::Shutdown`] rather than hanging.
    pub fn wait(self) -> Result<JobOutcome, ServeError> {
        let (lock, cvar) = &*self.slot;
        let mut done = lock_clean(lock);
        loop {
            if let Some(outcome) = done.take() {
                return outcome;
            }
            done = cvar.wait(done).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Non-blocking probe: the outcome if the job already completed.
    pub fn try_wait(&self) -> Option<Result<JobOutcome, ServeError>> {
        lock_clean(&self.slot.0).take()
    }
}

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads (virtual accelerator instances).
    pub workers: usize,
    /// Central submission-queue bound; submissions beyond it are
    /// rejected with [`SubmitError::QueueFull`].
    pub queue_capacity: usize,
    /// Per-tenant in-flight cap (queued + executing); submissions beyond
    /// it are rejected with [`SubmitError::TenantBusy`].
    pub tenant_inflight_cap: usize,
    /// Lock shards of the shared plan cache (1 = the classic
    /// single-lock cache).
    pub cache_shards: usize,
    /// Total plan-cache capacity, split across shards.
    pub cache_capacity: usize,
    /// Jobs a worker pulls from the central queues per dispatch; the
    /// surplus parks in its own deque where siblings can steal it.
    pub dispatch_batch: usize,
    /// Start with dispatch paused (submissions accepted, nothing
    /// executed) until [`FlexService::resume`] — lets tests line up a
    /// full backlog so scheduling order is deterministic.
    pub start_paused: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            queue_capacity: 256,
            tenant_inflight_cap: 128,
            cache_shards: 8,
            cache_capacity: sparseflex_core::DEFAULT_PLAN_CACHE_CAPACITY,
            dispatch_batch: 4,
            start_paused: false,
        }
    }
}

/// Per-tenant service counters (monotonic; snapshot via
/// [`FlexService::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantStats {
    /// Tenant id.
    pub tenant: u32,
    /// Fair-share weight.
    pub weight: u64,
    /// Jobs accepted by admission control.
    pub submitted: u64,
    /// Jobs completed (successfully or with a run error).
    pub completed: u64,
    /// Submissions rejected (queue full or in-flight cap).
    pub rejected: u64,
    /// Total modeled accelerator cycles the tenant's jobs spent queued.
    pub queue_wait_cycles: u64,
}

/// Whole-service snapshot: per-tenant counters plus pool and cache
/// telemetry.
#[derive(Debug, Clone)]
pub struct ServiceStats {
    /// Per-tenant counters, sorted by tenant id.
    pub tenants: Vec<TenantStats>,
    /// Jobs executed across all tenants.
    pub jobs_completed: u64,
    /// Submissions rejected across all tenants.
    pub jobs_rejected: u64,
    /// Jobs executed by a worker that stole them from a sibling.
    pub jobs_stolen: u64,
    /// Plan-cache counters aggregated across shards.
    pub cache: CacheCounters,
    /// Per-shard plan-cache counters.
    pub cache_shards: Vec<CacheCounters>,
    /// Cache-lock acquisitions that found the lock already held.
    pub cache_contended: u64,
    /// Worker threads in the pool.
    pub workers: usize,
}

/// One admitted, not-yet-dispatched job.
struct Pending {
    job_id: u64,
    tenant: u32,
    job: BatchJob,
    slot: Oneshot,
    admitted_at: Instant,
}

/// A dispatched job travelling through a worker deque.
struct Active {
    job_id: u64,
    tenant: u32,
    job: BatchJob,
    slot: Oneshot,
    queue_wait_cycles: u64,
    dispatch_seq: u64,
}

#[derive(Default)]
struct TenantState {
    weight: u64,
    pass: u64,
    in_flight: usize,
    queues: [VecDeque<Pending>; 3],
    submitted: u64,
    completed: u64,
    rejected: u64,
    queue_wait_cycles: u64,
}

impl TenantState {
    fn queued(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }
}

struct Central {
    tenants: HashMap<u32, TenantState>,
    queued_total: usize,
    /// Jobs parked in worker deques (stealable). Tracked under the
    /// central lock so sleeping workers can't miss a park notification.
    parked_total: usize,
    /// Virtual time: the pass of the most recently dispatched tenant.
    /// Tenants entering (or re-entering) the backlog start here, so an
    /// idle tenant cannot bank credit and then monopolize the pool.
    global_pass: u64,
    dispatch_seq: u64,
    paused: bool,
    shutdown: bool,
}

struct Shared {
    system: FlexSystem,
    central: Mutex<Central>,
    /// Signalled on submissions, resume, and shutdown.
    work_ready: Condvar,
    deques: Vec<Mutex<VecDeque<Active>>>,
    stolen: AtomicU64,
    next_job_id: AtomicU64,
    clock_hz: f64,
    config: ServeConfig,
}

impl Shared {
    /// Pop the next job under weighted-fair order: the backlogged tenant
    /// with the smallest pass, its highest-priority sub-queue first.
    fn dispatch_one(&self, central: &mut Central) -> Option<Active> {
        let tenant_id = central
            .tenants
            .iter()
            .filter(|(_, t)| t.queued() > 0)
            .min_by_key(|(id, t)| (t.pass, **id))
            .map(|(id, _)| *id)?;
        // Both lookups hold by construction (the tenant was picked from
        // the map with queued() > 0 under this same lock); `?` keeps the
        // path total anyway — a violated invariant means "no job", not a
        // worker panic.
        let t = central.tenants.get_mut(&tenant_id)?;
        let pending = t.queues.iter_mut().find_map(VecDeque::pop_front)?;
        t.pass += STRIDE_SCALE / t.weight.max(1);
        central.global_pass = t.pass;
        central.queued_total -= 1;
        let wait = pending.admitted_at.elapsed().as_secs_f64() * self.clock_hz;
        t.queue_wait_cycles += wait as u64;
        let seq = central.dispatch_seq;
        central.dispatch_seq += 1;
        Some(Active {
            job_id: pending.job_id,
            tenant: pending.tenant,
            job: pending.job,
            slot: pending.slot,
            queue_wait_cycles: wait as u64,
            dispatch_seq: seq,
        })
    }

    /// Execute one job on this worker and deliver the outcome.
    fn run_job(&self, active: Active, worker: usize, stolen: bool) {
        if stolen {
            self.stolen.fetch_add(1, Ordering::Relaxed);
        }
        let Active {
            job_id,
            tenant,
            job,
            slot,
            queue_wait_cycles,
            dispatch_seq,
        } = active;
        let outcome = self
            .system
            .run_pipelined(&job.a, &job.b, &job.workload)
            .map_err(ServeError::Run)
            .and_then(|run| {
                wire::encode_result(&WireResult {
                    job_id,
                    output: run.output,
                })
                .map_err(ServeError::Wire)
            })
            .map(|result_frame| JobOutcome {
                job_id,
                tenant,
                result_frame,
                queue_wait_cycles,
                dispatch_seq,
                worker,
                stolen,
            });
        {
            let mut central = lock_clean(&self.central);
            if let Some(t) = central.tenants.get_mut(&tenant) {
                t.in_flight -= 1;
                t.completed += 1;
            }
        }
        // A drained queue slot may now admit a blocked submitter; there
        // is no separate submitter condvar — submission is non-blocking
        // — but waking workers lets them re-check the central queues.
        let (lock, cvar) = &*slot;
        *lock_clean(lock) = Some(outcome);
        cvar.notify_all();
    }

    /// Note a job leaving a deque (popped or stolen).
    fn unpark_one(&self) {
        let mut central = lock_clean(&self.central);
        central.parked_total = central.parked_total.saturating_sub(1);
    }

    /// Worker main loop: own deque → central queues (batched) → steal
    /// from siblings → sleep.
    fn worker_loop(self: &Arc<Self>, worker: usize) {
        loop {
            // 1. Own deque, oldest first.
            if let Some(active) = lock_clean(&self.deques[worker]).pop_front() {
                self.unpark_one();
                self.run_job(active, worker, false);
                continue;
            }
            // 2. Pull a batch from the central queues; execute the first
            //    job, park the surplus in our deque for siblings to
            //    steal.
            let first = {
                let mut central = lock_clean(&self.central);
                if central.shutdown {
                    return;
                }
                if central.paused {
                    let _unused = self
                        .work_ready
                        .wait(central)
                        .unwrap_or_else(PoisonError::into_inner);
                    continue;
                }
                let mut batch = Vec::new();
                while batch.len() < self.config.dispatch_batch.max(1) {
                    match self.dispatch_one(&mut central) {
                        Some(a) => batch.push(a),
                        None => break,
                    }
                }
                drop(central);
                let mut it = batch.into_iter();
                let first = it.next();
                let surplus: Vec<Active> = it.collect();
                if !surplus.is_empty() {
                    let count = surplus.len();
                    lock_clean(&self.deques[worker]).extend(surplus);
                    // Publish the parked count under the central lock
                    // before notifying, so a sibling racing into its
                    // sleep check either sees parked work or receives
                    // the wakeup — never neither.
                    let mut central = lock_clean(&self.central);
                    central.parked_total += count;
                    drop(central);
                    self.work_ready.notify_all();
                }
                first
            };
            if let Some(active) = first {
                self.run_job(active, worker, false);
                continue;
            }
            // 3. Steal from the back of a sibling's deque (the youngest
            //    parked job, keeping the victim's locality on the front).
            let stolen = (0..self.deques.len())
                .filter(|&v| v != worker)
                .find_map(|v| lock_clean(&self.deques[v]).pop_back());
            if let Some(active) = stolen {
                self.unpark_one();
                self.run_job(active, worker, true);
                continue;
            }
            // 4. Nothing anywhere: sleep until submission/resume/
            //    shutdown/parked work appears.
            let central = lock_clean(&self.central);
            if central.shutdown {
                return;
            }
            if central.paused || (central.queued_total == 0 && central.parked_total == 0) {
                let _unused = self
                    .work_ready
                    .wait(central)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
    }
}

/// The multi-tenant serving front-end over a [`FlexSystem`].
///
/// Owns a pool of persistent worker threads sharing the system's
/// planner (with its cache re-sharded per
/// [`ServeConfig::cache_shards`]). Dropping the service shuts the pool
/// down and resolves every still-queued ticket with
/// [`ServeError::Shutdown`].
pub struct FlexService {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for FlexService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlexService")
            .field("workers", &self.workers.len())
            .field("config", &self.shared.config)
            .finish()
    }
}

impl FlexService {
    /// Start the service around `system` (its planner's cache is
    /// replaced by a sharded cache per the config; calibrator state —
    /// including any warm start — is preserved). Fails with
    /// [`StartError`] if the OS refuses a worker thread; any workers
    /// already spawned are torn down first.
    pub fn start(mut system: FlexSystem, config: ServeConfig) -> Result<Self, StartError> {
        system.planner.cache = PlanCache::with_shards(config.cache_capacity, config.cache_shards);
        let clock_hz = system.sage.accel.clock_hz;
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            system,
            central: Mutex::new(Central {
                tenants: HashMap::new(),
                queued_total: 0,
                parked_total: 0,
                global_pass: 0,
                dispatch_seq: 0,
                paused: config.start_paused,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            stolen: AtomicU64::new(0),
            next_job_id: AtomicU64::new(0),
            clock_hz,
            config,
        });
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let s = Arc::clone(&shared);
            match std::thread::Builder::new()
                .name(format!("sparseflex-serve-{i}"))
                .spawn(move || s.worker_loop(i))
            {
                Ok(h) => handles.push(h),
                Err(source) => {
                    lock_clean(&shared.central).shutdown = true;
                    shared.work_ready.notify_all();
                    for h in handles {
                        let _unused = h.join();
                    }
                    return Err(StartError { worker: i, source });
                }
            }
        }
        Ok(FlexService {
            shared,
            workers: handles,
        })
    }

    /// Start with default tuning.
    pub fn with_defaults(system: FlexSystem) -> Result<Self, StartError> {
        FlexService::start(system, ServeConfig::default())
    }

    /// Warm-start the shared planner's calibrator from stored traces
    /// (see [`sparseflex_core::read_traces`]); returns the number of
    /// traces replayed. Typically called right after
    /// [`start`](Self::start), before traffic arrives.
    pub fn warm_start(&self, traces: &[StoredTrace]) -> usize {
        self.shared.system.planner.calibrator.warm_start(traces);
        traces.len()
    }

    /// Set a tenant's fair-share weight (clamped to ≥ 1). Unregistered
    /// tenants are auto-registered at weight 1 on first submission.
    pub fn register_tenant(&self, tenant: u32, weight: u64) {
        let mut central = lock_clean(&self.shared.central);
        let global_pass = central.global_pass;
        let t = central.tenants.entry(tenant).or_default();
        t.weight = weight.max(1);
        t.pass = t.pass.max(global_pass);
    }

    /// Submit an encoded job frame ([`wire::encode_job`]). The frame is
    /// decoded and admitted atomically; rejections are typed.
    pub fn submit_frame(&self, bytes: &[u8]) -> Result<JobTicket, SubmitError> {
        let job = wire::decode_job(bytes)?;
        self.submit(job)
    }

    /// Submit an in-process job, skipping the wire decode.
    pub fn submit(&self, job: WireJob) -> Result<JobTicket, SubmitError> {
        let WireJob {
            tenant,
            priority,
            dtype,
            a,
            b,
        } = job;
        let batch_job = BatchJob::spgemm(a.to_coo(), b.to_coo(), dtype);
        let slot: Oneshot = Arc::new((Mutex::new(None), Condvar::new()));
        let job_id = self.shared.next_job_id.fetch_add(1, Ordering::Relaxed);
        {
            let mut central = lock_clean(&self.shared.central);
            if central.shutdown {
                return Err(SubmitError::Shutdown);
            }
            let global_pass = central.global_pass;
            let queued_total = central.queued_total;
            let cfg = &self.shared.config;
            let t = central.tenants.entry(tenant).or_insert_with(|| {
                let mut t = TenantState {
                    weight: 1,
                    ..TenantState::default()
                };
                t.pass = global_pass;
                t
            });
            if queued_total >= cfg.queue_capacity {
                t.rejected += 1;
                return Err(SubmitError::QueueFull {
                    capacity: cfg.queue_capacity,
                });
            }
            if t.in_flight >= cfg.tenant_inflight_cap {
                t.rejected += 1;
                return Err(SubmitError::TenantBusy {
                    tenant,
                    in_flight: t.in_flight,
                    cap: cfg.tenant_inflight_cap,
                });
            }
            // A tenant re-entering the backlog joins at current virtual
            // time instead of replaying banked idle credit.
            if t.queued() == 0 {
                t.pass = t.pass.max(global_pass);
            }
            t.in_flight += 1;
            t.submitted += 1;
            t.queues[priority as usize].push_back(Pending {
                job_id,
                tenant,
                job: batch_job,
                slot: Arc::clone(&slot),
                admitted_at: Instant::now(),
            });
            central.queued_total += 1;
        }
        self.shared.work_ready.notify_one();
        Ok(JobTicket { job_id, slot })
    }

    /// Un-pause dispatch (no-op when not paused). See
    /// [`ServeConfig::start_paused`].
    pub fn resume(&self) {
        lock_clean(&self.shared.central).paused = false;
        self.shared.work_ready.notify_all();
    }

    /// Snapshot per-tenant counters plus pool and cache telemetry.
    pub fn stats(&self) -> ServiceStats {
        let central = lock_clean(&self.shared.central);
        let mut tenants: Vec<TenantStats> = central
            .tenants
            .iter()
            .map(|(&tenant, t)| TenantStats {
                tenant,
                weight: t.weight,
                submitted: t.submitted,
                completed: t.completed,
                rejected: t.rejected,
                queue_wait_cycles: t.queue_wait_cycles,
            })
            .collect();
        tenants.sort_by_key(|t| t.tenant);
        let cache = &self.shared.system.planner.cache;
        ServiceStats {
            jobs_completed: tenants.iter().map(|t| t.completed).sum(),
            jobs_rejected: tenants.iter().map(|t| t.rejected).sum(),
            jobs_stolen: self.shared.stolen.load(Ordering::Relaxed),
            cache: cache.counters(),
            cache_shards: cache.shard_counters(),
            cache_contended: cache.contended_acquisitions(),
            workers: self.workers.len(),
            tenants,
        }
    }

    /// The shared system (e.g. to inspect the planner's cache).
    pub fn system(&self) -> &FlexSystem {
        &self.shared.system
    }

    /// Stop accepting work, drain queues (pending tickets resolve to
    /// [`ServeError::Shutdown`]), and join the workers.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        let abandoned: Vec<Oneshot> = {
            let mut central = lock_clean(&self.shared.central);
            central.shutdown = true;
            let mut slots = Vec::new();
            for t in central.tenants.values_mut() {
                for q in &mut t.queues {
                    while let Some(p) = q.pop_front() {
                        t.in_flight -= 1;
                        slots.push(p.slot);
                    }
                }
            }
            central.queued_total = 0;
            slots
        };
        self.shared.work_ready.notify_all();
        for handle in self.workers.drain(..) {
            let _unused = handle.join();
        }
        // Workers are gone; anything still parked in a deque is
        // abandoned too.
        let parked: Vec<Oneshot> = self
            .shared
            .deques
            .iter()
            .flat_map(|d| lock_clean(d).drain(..).map(|a| a.slot).collect::<Vec<_>>())
            .collect();
        for slot in abandoned.into_iter().chain(parked) {
            let (lock, cvar) = &*slot;
            let mut done = lock_clean(lock);
            if done.is_none() {
                *done = Some(Err(ServeError::Shutdown));
            }
            cvar.notify_all();
        }
    }
}

impl Drop for FlexService {
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            self.shutdown_inner();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparseflex_formats::{CooMatrix, DataType, MatrixData, MatrixFormat};

    fn operand(rows: usize, cols: usize, seed: u64) -> CooMatrix {
        let mut triplets = Vec::new();
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1);
        for r in 0..rows {
            for c in 0..cols {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                if state.is_multiple_of(4) {
                    triplets.push((r, c, ((state % 17) as f64) - 8.0));
                }
            }
        }
        CooMatrix::from_triplets(rows, cols, triplets).unwrap()
    }

    fn job(tenant: u32, priority: Priority, seed: u64) -> WireJob {
        let a = MatrixData::encode(&operand(8, 10, seed), &MatrixFormat::Csr).unwrap();
        let b = MatrixData::encode(&operand(10, 6, seed + 100), &MatrixFormat::Zvc).unwrap();
        WireJob {
            tenant,
            priority,
            dtype: DataType::Fp32,
            a,
            b,
        }
    }

    #[test]
    fn jobs_complete_and_counters_track() {
        let service = FlexService::start(
            FlexSystem::default(),
            ServeConfig {
                workers: 2,
                ..ServeConfig::default()
            },
        )
        .expect("service starts");
        let tickets: Vec<JobTicket> = (0..8)
            .map(|i| service.submit(job(1, Priority::Normal, i)).unwrap())
            .collect();
        for t in tickets {
            let outcome = t.wait().expect("job must complete");
            assert_eq!(outcome.tenant, 1);
            let res = wire::decode_result(&outcome.result_frame).unwrap();
            assert_eq!(res.job_id, outcome.job_id);
        }
        let stats = service.stats();
        assert_eq!(stats.jobs_completed, 8);
        assert_eq!(stats.tenants.len(), 1);
        assert_eq!(stats.tenants[0].submitted, 8);
        assert_eq!(stats.tenants[0].completed, 8);
        assert_eq!(stats.tenants[0].rejected, 0);
        assert_eq!(stats.cache.misses + stats.cache.hits, 8);
    }

    #[test]
    fn queue_full_and_tenant_caps_reject_typed() {
        let service = FlexService::start(
            FlexSystem::default(),
            ServeConfig {
                workers: 1,
                queue_capacity: 4,
                tenant_inflight_cap: 3,
                start_paused: true,
                ..ServeConfig::default()
            },
        )
        .expect("service starts");
        // Paused: jobs queue without being drained.
        assert!(service.submit(job(1, Priority::Normal, 0)).is_ok());
        assert!(service.submit(job(1, Priority::Normal, 1)).is_ok());
        assert!(service.submit(job(1, Priority::Normal, 2)).is_ok());
        // Tenant 1 is now at its in-flight cap.
        assert!(matches!(
            service.submit(job(1, Priority::Normal, 3)),
            Err(SubmitError::TenantBusy {
                tenant: 1,
                in_flight: 3,
                cap: 3
            })
        ));
        // Another tenant still fits — until the queue bound.
        assert!(service.submit(job(2, Priority::Normal, 4)).is_ok());
        assert!(matches!(
            service.submit(job(2, Priority::Normal, 5)),
            Err(SubmitError::QueueFull { capacity: 4 })
        ));
        let stats = service.stats();
        assert_eq!(stats.jobs_rejected, 2);
        service.resume();
    }

    #[test]
    fn weighted_fairness_governs_dispatch_order() {
        let service = FlexService::start(
            FlexSystem::default(),
            ServeConfig {
                workers: 1,
                queue_capacity: 1024,
                tenant_inflight_cap: 1024,
                start_paused: true,
                dispatch_batch: 1,
                ..ServeConfig::default()
            },
        )
        .expect("service starts");
        service.register_tenant(1, 1); // saturating competitor
        service.register_tenant(2, 8); // light, high-weight tenant
        let heavy: Vec<JobTicket> = (0..36)
            .map(|i| service.submit(job(1, Priority::Normal, i)).unwrap())
            .collect();
        let light: Vec<JobTicket> = (0..6)
            .map(|i| service.submit(job(2, Priority::Normal, 200 + i)).unwrap())
            .collect();
        service.resume();
        let heavy_seq: Vec<u64> = heavy
            .into_iter()
            .map(|t| t.wait().unwrap().dispatch_seq)
            .collect();
        let light_seq: Vec<u64> = light
            .into_iter()
            .map(|t| t.wait().unwrap().dispatch_seq)
            .collect();
        // The weight-8 tenant's 6 jobs all dispatch within the first
        // stretch of the schedule — it is not starved behind the 36-job
        // backlog of the weight-1 competitor.
        let light_max = *light_seq.iter().max().unwrap();
        assert!(
            light_max < 14,
            "high-weight tenant starved: its last dispatch was #{light_max}"
        );
        let heavy_mean: f64 = heavy_seq.iter().sum::<u64>() as f64 / heavy_seq.len() as f64;
        let light_mean: f64 = light_seq.iter().sum::<u64>() as f64 / light_seq.len() as f64;
        assert!(
            light_mean < heavy_mean,
            "weighted tenant must be served earlier on average \
             ({light_mean:.1} vs {heavy_mean:.1})"
        );
    }

    #[test]
    fn priorities_order_within_a_tenant() {
        let service = FlexService::start(
            FlexSystem::default(),
            ServeConfig {
                workers: 1,
                start_paused: true,
                dispatch_batch: 1,
                ..ServeConfig::default()
            },
        )
        .expect("service starts");
        let low = service.submit(job(1, Priority::Low, 0)).unwrap();
        let normal = service.submit(job(1, Priority::Normal, 1)).unwrap();
        let high = service.submit(job(1, Priority::High, 2)).unwrap();
        service.resume();
        let low_seq = low.wait().unwrap().dispatch_seq;
        let normal_seq = normal.wait().unwrap().dispatch_seq;
        let high_seq = high.wait().unwrap().dispatch_seq;
        assert!(high_seq < normal_seq && normal_seq < low_seq);
    }

    #[test]
    fn surplus_batch_work_is_stolen_by_idle_workers() {
        // One worker drains the whole backlog into its deque (batch >=
        // backlog); its siblings have nothing queued and must steal.
        // Whether a steal lands before the hoarder drains its own deque
        // is a scheduling race on a loaded single-core host, so the
        // scenario retries — one observed steal proves the mechanism
        // and its accounting.
        let run_once = || {
            let service = FlexService::start(
                FlexSystem::default(),
                ServeConfig {
                    workers: 4,
                    dispatch_batch: 64,
                    start_paused: true,
                    queue_capacity: 64,
                    ..ServeConfig::default()
                },
            )
            .expect("service starts");
            let tickets: Vec<JobTicket> = (0..48)
                .map(|i| service.submit(job(1, Priority::Normal, i)).unwrap())
                .collect();
            service.resume();
            let outcomes: Vec<JobOutcome> =
                tickets.into_iter().map(|t| t.wait().unwrap()).collect();
            assert!(outcomes.iter().all(|o| o.worker < 4));
            let stolen = service.stats().jobs_stolen;
            assert_eq!(outcomes.iter().filter(|o| o.stolen).count() as u64, stolen);
            stolen
        };
        assert!(
            (0..8).map(|_| run_once()).any(|s| s > 0),
            "idle workers never stole from the hoarding worker's deque"
        );
    }

    #[test]
    fn shutdown_resolves_pending_tickets() {
        let service = FlexService::start(
            FlexSystem::default(),
            ServeConfig {
                workers: 1,
                start_paused: true,
                ..ServeConfig::default()
            },
        )
        .expect("service starts");
        let ticket = service.submit(job(1, Priority::Normal, 0)).unwrap();
        service.shutdown();
        assert_eq!(ticket.wait(), Err(ServeError::Shutdown));
    }
}

//! The compact binary wire format jobs and results travel in.
//!
//! Every frame shares one fixed 16-byte header:
//!
//! | offset | size | field                                          |
//! |-------:|-----:|------------------------------------------------|
//! |      0 |    4 | magic `b"SFLX"`                                 |
//! |      4 |    1 | version ([`WIRE_VERSION`])                      |
//! |      5 |    1 | kind (0 matrix, 1 tensor, 2 job, 3 result)      |
//! |      6 |    2 | reserved (must be zero)                         |
//! |      8 |    8 | FNV-1a checksum of the body, little-endian      |
//! |     16 |    — | body (kind-specific)                            |
//!
//! A **matrix body** is a format tag (+ structural parameters), a
//! `rows`/`cols` shape header, then the payload: Dense frames carry the
//! full row-major value array; every sparse format carries its canonical
//! COO triplet arrays (`nnz`, row ids, col ids, values — indices as
//! `u32`, values as IEEE-754 `f64` bit patterns). Decoding re-encodes
//! the triplets into the tagged format, which is lossless because every
//! format in the workspace round-trips exactly through the COO hub (the
//! invariant `formats::roundtrip_tests` pins). A **tensor body** is the
//! same shape with three index arrays. A **job body** carries tenant,
//! priority and datatype plus two embedded matrix frames; a **result
//! body** carries the job id and the embedded Dense output frame.
//!
//! Malformed input never panics: truncation, bad magic, version or kind
//! mismatches, checksum failures, oversized counts and trailing garbage
//! all surface as typed [`WireError`]s.

use sparseflex_formats::{
    ByteError, ByteReader, ByteWriter, CooMatrix, CooTensor3, DataType, DenseMatrix, FormatError,
    MatrixData, MatrixFormat, SparseMatrix, SparseTensor3, TensorData, TensorFormat,
};

use crate::service::Priority;

/// Frame magic: the first four bytes of every wire frame.
pub const WIRE_MAGIC: [u8; 4] = *b"SFLX";

/// Current wire protocol version, carried in every frame header.
pub const WIRE_VERSION: u8 = 1;

/// Byte length of the fixed frame header (magic + version + kind +
/// reserved + checksum).
pub const HEADER_LEN: usize = 16;

const KIND_MATRIX: u8 = 0;
const KIND_TENSOR: u8 = 1;
const KIND_JOB: u8 = 2;
const KIND_RESULT: u8 = 3;

/// Typed decode/encode failures. Hostile bytes map to errors, never
/// panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The frame does not start with [`WIRE_MAGIC`].
    BadMagic,
    /// The frame's version byte is not [`WIRE_VERSION`].
    UnsupportedVersion(u8),
    /// The frame is of a different kind than the decoder expected.
    WrongKind {
        /// Kind byte the decoder expected.
        expected: u8,
        /// Kind byte the frame carried.
        found: u8,
    },
    /// The body checksum does not match the header — the frame was
    /// garbled in flight.
    ChecksumMismatch {
        /// Checksum the header claims.
        expected: u64,
        /// Checksum recomputed over the received body.
        found: u64,
    },
    /// The header's reserved bytes are not zero. They are outside the
    /// body checksum, so enforcing zero keeps *every* byte of a frame
    /// covered by some validation.
    ReservedNonZero {
        /// The offending reserved field value.
        found: u16,
    },
    /// The buffer ended before a field (wraps [`ByteError::Truncated`]).
    Truncated {
        /// Bytes the field requires.
        needed: usize,
        /// Bytes remaining.
        available: usize,
    },
    /// A count or dimension exceeds what the platform or the format
    /// allows (wire indices are `u32`).
    Overflow(&'static str),
    /// An unknown format/priority/datatype tag byte.
    UnknownTag {
        /// Which tag field was bad.
        what: &'static str,
        /// The offending byte.
        tag: u8,
    },
    /// Bytes remain after a complete frame.
    TrailingBytes {
        /// How many unparsed bytes follow the frame.
        extra: usize,
    },
    /// The decoded arrays are structurally invalid (out-of-bounds or
    /// unsorted indices).
    Format(FormatError),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic => write!(f, "bad frame magic (expected \"SFLX\")"),
            WireError::UnsupportedVersion(v) => {
                write!(f, "unsupported wire version {v} (expected {WIRE_VERSION})")
            }
            WireError::WrongKind { expected, found } => {
                write!(f, "wrong frame kind {found} (expected {expected})")
            }
            WireError::ChecksumMismatch { expected, found } => {
                write!(f, "body checksum {found:#018x} != header {expected:#018x}")
            }
            WireError::ReservedNonZero { found } => {
                write!(f, "reserved header bytes must be zero (found {found:#06x})")
            }
            WireError::Truncated { needed, available } => {
                write!(f, "frame truncated: need {needed} bytes, have {available}")
            }
            WireError::Overflow(what) => write!(f, "field overflow: {what}"),
            WireError::UnknownTag { what, tag } => write!(f, "unknown {what} tag {tag}"),
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after a complete frame")
            }
            WireError::Format(e) => write!(f, "structurally invalid payload: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<ByteError> for WireError {
    fn from(e: ByteError) -> Self {
        match e {
            ByteError::Truncated { needed, available } => {
                WireError::Truncated { needed, available }
            }
            ByteError::Overflow(what) => WireError::Overflow(what),
        }
    }
}

impl From<FormatError> for WireError {
    fn from(e: FormatError) -> Self {
        WireError::Format(e)
    }
}

// ---------------------------------------------------------------------
// Frame envelope
// ---------------------------------------------------------------------

/// Start a frame of the given kind: header with a checksum placeholder.
fn begin_frame(kind: u8) -> ByteWriter {
    let mut w = ByteWriter::with_capacity(64);
    w.put_bytes(&WIRE_MAGIC);
    w.put_u8(WIRE_VERSION);
    w.put_u8(kind);
    w.put_u16(0); // reserved
    w.put_u64(0); // checksum, patched by finish_frame
    w
}

/// Patch the body checksum into the header and return the frame bytes.
fn finish_frame(mut w: ByteWriter) -> Vec<u8> {
    let sum = sparseflex_formats::fnv1a(&w.as_slice()[HEADER_LEN..]);
    w.patch_u64(8, sum);
    w.into_bytes()
}

/// Validate the envelope of `bytes` and return a reader positioned at
/// the body start.
fn open_frame(bytes: &[u8], expected_kind: u8) -> Result<ByteReader<'_>, WireError> {
    let mut r = ByteReader::new(bytes);
    let magic = r.take_bytes(4)?;
    if magic != WIRE_MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = r.take_u8()?;
    if version != WIRE_VERSION {
        return Err(WireError::UnsupportedVersion(version));
    }
    let kind = r.take_u8()?;
    if kind != expected_kind {
        return Err(WireError::WrongKind {
            expected: expected_kind,
            found: kind,
        });
    }
    let reserved = r.take_u16()?;
    if reserved != 0 {
        return Err(WireError::ReservedNonZero { found: reserved });
    }
    let expected = r.take_u64()?;
    let found = sparseflex_formats::fnv1a(&bytes[HEADER_LEN..]);
    if expected != found {
        return Err(WireError::ChecksumMismatch { expected, found });
    }
    Ok(r)
}

/// Reject unconsumed bytes after a complete frame.
fn expect_end(r: &ByteReader<'_>) -> Result<(), WireError> {
    if r.remaining() != 0 {
        return Err(WireError::TrailingBytes {
            extra: r.remaining(),
        });
    }
    Ok(())
}

fn put_dim(w: &mut ByteWriter, dim: usize) -> Result<(), WireError> {
    if dim > u32::MAX as usize {
        return Err(WireError::Overflow("dimension exceeds u32 wire indices"));
    }
    w.put_u64(dim as u64);
    Ok(())
}

/// Range-checked `usize -> u32` narrowing for wire indices: the single
/// place an encode path is allowed to cast down. Coordinates are bounded
/// by their (already-guarded) dimensions, but the check is kept total so
/// a malformed payload can never silently truncate into a frame that
/// decodes "successfully" to the wrong matrix.
fn put_u32_checked(w: &mut ByteWriter, v: usize, what: &'static str) -> Result<(), WireError> {
    if v > u32::MAX as usize {
        return Err(WireError::Overflow(what));
    }
    w.put_u32(v as u32);
    Ok(())
}

/// Read a `u64` count and verify the remaining bytes can actually hold
/// `count * bytes_per_item` — a tampered count field fails here as
/// `Truncated` *before* any allocation is sized from it.
fn take_count(
    r: &mut ByteReader<'_>,
    what: &'static str,
    bytes_per_item: usize,
) -> Result<usize, WireError> {
    let count = r.take_len(what)?;
    let need = count
        .checked_mul(bytes_per_item)
        .ok_or(WireError::Overflow(what))?;
    if r.remaining() < need {
        return Err(WireError::Truncated {
            needed: need,
            available: r.remaining(),
        });
    }
    Ok(count)
}

// ---------------------------------------------------------------------
// Format tags
// ---------------------------------------------------------------------

fn put_matrix_format(w: &mut ByteWriter, fmt: &MatrixFormat) -> Result<(), WireError> {
    match *fmt {
        MatrixFormat::Dense => w.put_u8(0),
        MatrixFormat::Coo => w.put_u8(1),
        MatrixFormat::Csr => w.put_u8(2),
        MatrixFormat::Csc => w.put_u8(3),
        MatrixFormat::Bsr { br, bc } => {
            w.put_u8(4);
            put_u32_checked(w, br, "BSR block shape exceeds u32")?;
            put_u32_checked(w, bc, "BSR block shape exceeds u32")?;
        }
        MatrixFormat::Dia => w.put_u8(5),
        MatrixFormat::Ell => w.put_u8(6),
        MatrixFormat::Rlc { run_bits } => {
            w.put_u8(7);
            w.put_u32(run_bits);
        }
        MatrixFormat::Zvc => w.put_u8(8),
    }
    Ok(())
}

fn take_matrix_format(r: &mut ByteReader<'_>) -> Result<MatrixFormat, WireError> {
    Ok(match r.take_u8()? {
        0 => MatrixFormat::Dense,
        1 => MatrixFormat::Coo,
        2 => MatrixFormat::Csr,
        3 => MatrixFormat::Csc,
        4 => {
            let br = r.take_u32()? as usize;
            let bc = r.take_u32()? as usize;
            MatrixFormat::Bsr { br, bc }
        }
        5 => MatrixFormat::Dia,
        6 => MatrixFormat::Ell,
        7 => MatrixFormat::Rlc {
            run_bits: r.take_u32()?,
        },
        8 => MatrixFormat::Zvc,
        tag => {
            return Err(WireError::UnknownTag {
                what: "matrix format",
                tag,
            })
        }
    })
}

fn put_tensor_format(w: &mut ByteWriter, fmt: &TensorFormat) -> Result<(), WireError> {
    match *fmt {
        TensorFormat::Dense => w.put_u8(0),
        TensorFormat::Coo => w.put_u8(1),
        TensorFormat::Csf => w.put_u8(2),
        TensorFormat::HiCoo { block } => {
            w.put_u8(3);
            put_u32_checked(w, block, "HiCOO block exceeds u32")?;
        }
        TensorFormat::Rlc { run_bits } => {
            w.put_u8(4);
            w.put_u32(run_bits);
        }
        TensorFormat::Zvc => w.put_u8(5),
    }
    Ok(())
}

fn take_tensor_format(r: &mut ByteReader<'_>) -> Result<TensorFormat, WireError> {
    Ok(match r.take_u8()? {
        0 => TensorFormat::Dense,
        1 => TensorFormat::Coo,
        2 => TensorFormat::Csf,
        3 => TensorFormat::HiCoo {
            block: r.take_u32()? as usize,
        },
        4 => TensorFormat::Rlc {
            run_bits: r.take_u32()?,
        },
        5 => TensorFormat::Zvc,
        tag => {
            return Err(WireError::UnknownTag {
                what: "tensor format",
                tag,
            })
        }
    })
}

// ---------------------------------------------------------------------
// Matrix frames
// ---------------------------------------------------------------------

/// Write the matrix *body* (format tag, shape, payload) into `w`.
fn put_matrix_body(w: &mut ByteWriter, m: &MatrixData) -> Result<(), WireError> {
    put_matrix_format(w, &m.format())?;
    put_dim(w, m.rows())?;
    put_dim(w, m.cols())?;
    match m {
        MatrixData::Dense(d) => {
            for &v in d.data() {
                w.put_f64(v);
            }
        }
        other => {
            let coo = other.to_coo();
            w.put_u64(coo.values().len() as u64);
            for &r in coo.row_ids() {
                put_u32_checked(w, r, "matrix row id exceeds u32")?;
            }
            for &c in coo.col_ids() {
                put_u32_checked(w, c, "matrix col id exceeds u32")?;
            }
            for &v in coo.values() {
                w.put_f64(v);
            }
        }
    }
    Ok(())
}

/// Read the matrix body from `r` and rebuild the tagged payload.
fn take_matrix_body(r: &mut ByteReader<'_>) -> Result<MatrixData, WireError> {
    let fmt = take_matrix_format(r)?;
    let rows = r.take_len("matrix rows")?;
    let cols = r.take_len("matrix cols")?;
    if rows > u32::MAX as usize || cols > u32::MAX as usize {
        return Err(WireError::Overflow("dimension exceeds u32 wire indices"));
    }
    if fmt == MatrixFormat::Dense {
        let count = rows
            .checked_mul(cols)
            .ok_or(WireError::Overflow("dense element count"))?;
        let need = count
            .checked_mul(8)
            .ok_or(WireError::Overflow("dense byte count"))?;
        if r.remaining() < need {
            return Err(WireError::Truncated {
                needed: need,
                available: r.remaining(),
            });
        }
        let mut data = Vec::with_capacity(count);
        for _ in 0..count {
            data.push(r.take_f64()?);
        }
        return Ok(MatrixData::Dense(DenseMatrix::from_vec(rows, cols, data)?));
    }
    let nnz = take_count(r, "matrix nnz", 4 + 4 + 8)?;
    let mut row_ids = Vec::with_capacity(nnz);
    for _ in 0..nnz {
        row_ids.push(r.take_u32()? as usize);
    }
    let mut col_ids = Vec::with_capacity(nnz);
    for _ in 0..nnz {
        col_ids.push(r.take_u32()? as usize);
    }
    let mut values = Vec::with_capacity(nnz);
    for _ in 0..nnz {
        values.push(r.take_f64()?);
    }
    let coo = CooMatrix::from_parts(rows, cols, row_ids, col_ids, values)?;
    Ok(MatrixData::encode(&coo, &fmt)?)
}

/// Encode a matrix payload into a standalone wire frame.
pub fn encode_matrix(m: &MatrixData) -> Result<Vec<u8>, WireError> {
    let mut w = begin_frame(KIND_MATRIX);
    put_matrix_body(&mut w, m)?;
    Ok(finish_frame(w))
}

/// Decode a standalone matrix frame. Lossless for canonically-encoded
/// payloads; rejects truncated/garbled frames with typed errors.
pub fn decode_matrix(bytes: &[u8]) -> Result<MatrixData, WireError> {
    let mut r = open_frame(bytes, KIND_MATRIX)?;
    let m = take_matrix_body(&mut r)?;
    expect_end(&r)?;
    Ok(m)
}

// ---------------------------------------------------------------------
// Tensor frames
// ---------------------------------------------------------------------

/// Encode a 3-D tensor payload into a standalone wire frame.
pub fn encode_tensor(t: &TensorData) -> Result<Vec<u8>, WireError> {
    let mut w = begin_frame(KIND_TENSOR);
    put_tensor_format(&mut w, &t.format())?;
    put_dim(&mut w, t.dim_x())?;
    put_dim(&mut w, t.dim_y())?;
    put_dim(&mut w, t.dim_z())?;
    match t {
        TensorData::Dense(d) => {
            for &v in d.data() {
                w.put_f64(v);
            }
        }
        other => {
            let coo = other.to_coo();
            w.put_u64(coo.values().len() as u64);
            for &x in coo.x_ids() {
                put_u32_checked(&mut w, x, "tensor x id exceeds u32")?;
            }
            for &y in coo.y_ids() {
                put_u32_checked(&mut w, y, "tensor y id exceeds u32")?;
            }
            for &z in coo.z_ids() {
                put_u32_checked(&mut w, z, "tensor z id exceeds u32")?;
            }
            for &v in coo.values() {
                w.put_f64(v);
            }
        }
    }
    Ok(finish_frame(w))
}

/// Decode a standalone tensor frame.
pub fn decode_tensor(bytes: &[u8]) -> Result<TensorData, WireError> {
    let mut r = open_frame(bytes, KIND_TENSOR)?;
    let fmt = take_tensor_format(&mut r)?;
    let dx = r.take_len("tensor dim x")?;
    let dy = r.take_len("tensor dim y")?;
    let dz = r.take_len("tensor dim z")?;
    if dx > u32::MAX as usize || dy > u32::MAX as usize || dz > u32::MAX as usize {
        return Err(WireError::Overflow("dimension exceeds u32 wire indices"));
    }
    let t = if fmt == TensorFormat::Dense {
        let count = dx
            .checked_mul(dy)
            .and_then(|p| p.checked_mul(dz))
            .ok_or(WireError::Overflow("dense element count"))?;
        let need = count
            .checked_mul(8)
            .ok_or(WireError::Overflow("dense byte count"))?;
        if r.remaining() < need {
            return Err(WireError::Truncated {
                needed: need,
                available: r.remaining(),
            });
        }
        let mut data = Vec::with_capacity(count);
        for _ in 0..count {
            data.push(r.take_f64()?);
        }
        TensorData::Dense(sparseflex_formats::DenseTensor3::from_vec(
            dx, dy, dz, data,
        )?)
    } else {
        let nnz = take_count(&mut r, "tensor nnz", 4 + 4 + 4 + 8)?;
        let mut xs = Vec::with_capacity(nnz);
        for _ in 0..nnz {
            xs.push(r.take_u32()? as usize);
        }
        let mut ys = Vec::with_capacity(nnz);
        for _ in 0..nnz {
            ys.push(r.take_u32()? as usize);
        }
        let mut zs = Vec::with_capacity(nnz);
        for _ in 0..nnz {
            zs.push(r.take_u32()? as usize);
        }
        let mut quads = Vec::with_capacity(nnz);
        for i in 0..nnz {
            quads.push((xs[i], ys[i], zs[i], r.take_f64()?));
        }
        let coo = CooTensor3::from_quads(dx, dy, dz, quads)?;
        TensorData::encode(&coo, &fmt)?
    };
    expect_end(&r)?;
    Ok(t)
}

// ---------------------------------------------------------------------
// Job / result frames
// ---------------------------------------------------------------------

fn put_dtype(w: &mut ByteWriter, dt: DataType) {
    w.put_u8(match dt {
        DataType::Int8 => 0,
        DataType::Int16 => 1,
        DataType::Bf16 => 2,
        DataType::Int32 => 3,
        DataType::Fp32 => 4,
        DataType::Fp64 => 5,
    });
}

fn take_dtype(r: &mut ByteReader<'_>) -> Result<DataType, WireError> {
    Ok(match r.take_u8()? {
        0 => DataType::Int8,
        1 => DataType::Int16,
        2 => DataType::Bf16,
        3 => DataType::Int32,
        4 => DataType::Fp32,
        5 => DataType::Fp64,
        tag => {
            return Err(WireError::UnknownTag {
                what: "datatype",
                tag,
            })
        }
    })
}

/// One SpGEMM job as it travels on the wire: who submitted it, how
/// urgent it is, and the two operands in their memory formats.
#[derive(Debug, Clone, PartialEq)]
pub struct WireJob {
    /// Submitting tenant id.
    pub tenant: u32,
    /// Scheduling priority within the tenant's queue.
    pub priority: Priority,
    /// Logical element datatype (drives the storage/energy accounting).
    pub dtype: DataType,
    /// Streaming operand, in any matrix format.
    pub a: MatrixData,
    /// Stationary operand, in any matrix format.
    pub b: MatrixData,
}

/// Encode a job into a wire frame (tenant, priority, dtype, then the
/// two operands as embedded matrix frames).
pub fn encode_job(job: &WireJob) -> Result<Vec<u8>, WireError> {
    let mut w = begin_frame(KIND_JOB);
    w.put_u32(job.tenant);
    w.put_u8(job.priority as u8);
    put_dtype(&mut w, job.dtype);
    w.put_u16(0); // reserved
    let a = encode_matrix(&job.a)?;
    w.put_u64(a.len() as u64);
    w.put_bytes(&a);
    let b = encode_matrix(&job.b)?;
    w.put_u64(b.len() as u64);
    w.put_bytes(&b);
    Ok(finish_frame(w))
}

/// Decode a job frame.
pub fn decode_job(bytes: &[u8]) -> Result<WireJob, WireError> {
    let mut r = open_frame(bytes, KIND_JOB)?;
    let tenant = r.take_u32()?;
    let priority = match r.take_u8()? {
        0 => Priority::High,
        1 => Priority::Normal,
        2 => Priority::Low,
        tag => {
            return Err(WireError::UnknownTag {
                what: "priority",
                tag,
            })
        }
    };
    let dtype = take_dtype(&mut r)?;
    r.take_u16()?; // reserved
    let a_len = take_count(&mut r, "operand A frame length", 1)?;
    let a = decode_matrix(r.take_bytes(a_len)?)?;
    let b_len = take_count(&mut r, "operand B frame length", 1)?;
    let b = decode_matrix(r.take_bytes(b_len)?)?;
    expect_end(&r)?;
    Ok(WireJob {
        tenant,
        priority,
        dtype,
        a,
        b,
    })
}

/// A completed job's output as it travels back: the job id the service
/// assigned at submission plus the dense output matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct WireResult {
    /// Service-assigned job id (unique per service instance).
    pub job_id: u64,
    /// The SpGEMM output, stitched from the per-tile outputs.
    pub output: DenseMatrix,
}

/// Encode a result frame (job id + embedded Dense matrix frame).
pub fn encode_result(res: &WireResult) -> Result<Vec<u8>, WireError> {
    let mut w = begin_frame(KIND_RESULT);
    w.put_u64(res.job_id);
    let m = encode_matrix(&MatrixData::Dense(res.output.clone()))?;
    w.put_u64(m.len() as u64);
    w.put_bytes(&m);
    Ok(finish_frame(w))
}

/// Decode a result frame. The embedded matrix must be Dense.
pub fn decode_result(bytes: &[u8]) -> Result<WireResult, WireError> {
    let mut r = open_frame(bytes, KIND_RESULT)?;
    let job_id = r.take_u64()?;
    let m_len = take_count(&mut r, "result frame length", 1)?;
    let m = decode_matrix(r.take_bytes(m_len)?)?;
    expect_end(&r)?;
    match m {
        MatrixData::Dense(output) => Ok(WireResult { job_id, output }),
        other => Err(WireError::UnknownTag {
            what: "result payload format (must be Dense)",
            tag: match other.format() {
                MatrixFormat::Coo => 1,
                MatrixFormat::Csr => 2,
                MatrixFormat::Csc => 3,
                MatrixFormat::Bsr { .. } => 4,
                MatrixFormat::Dia => 5,
                MatrixFormat::Ell => 6,
                MatrixFormat::Rlc { .. } => 7,
                _ => 8,
            },
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_coo() -> CooMatrix {
        CooMatrix::from_triplets(
            6,
            5,
            vec![
                (0, 0, 1.5),
                (1, 3, -2.0),
                (2, 2, 3.25),
                (4, 4, 4.0),
                (5, 0, 5.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn matrix_frames_roundtrip_every_format() {
        let coo = sample_coo();
        let formats = [
            MatrixFormat::Dense,
            MatrixFormat::Coo,
            MatrixFormat::Csr,
            MatrixFormat::Csc,
            MatrixFormat::Bsr { br: 2, bc: 2 },
            MatrixFormat::Dia,
            MatrixFormat::Ell,
            MatrixFormat::Rlc { run_bits: 4 },
            MatrixFormat::Zvc,
        ];
        for fmt in formats {
            let data = MatrixData::encode(&coo, &fmt).unwrap();
            let bytes = encode_matrix(&data).unwrap();
            let back = decode_matrix(&bytes).unwrap();
            assert_eq!(back, data, "wire roundtrip failed for {fmt}");
        }
    }

    #[test]
    fn tensor_frames_roundtrip_every_format() {
        let coo = CooTensor3::from_quads(
            4,
            5,
            6,
            vec![(0, 0, 0, 1.0), (1, 4, 5, -2.5), (3, 2, 3, 3.0)],
        )
        .unwrap();
        let formats = [
            TensorFormat::Dense,
            TensorFormat::Coo,
            TensorFormat::Csf,
            TensorFormat::HiCoo { block: 2 },
            TensorFormat::Rlc { run_bits: 6 },
            TensorFormat::Zvc,
        ];
        for fmt in formats {
            let data = TensorData::encode(&coo, &fmt).unwrap();
            let bytes = encode_tensor(&data).unwrap();
            let back = decode_tensor(&bytes).unwrap();
            assert_eq!(back, data, "tensor wire roundtrip failed for {fmt}");
        }
    }

    #[test]
    fn truncation_and_garbling_are_typed() {
        let data = MatrixData::encode(&sample_coo(), &MatrixFormat::Csr).unwrap();
        let bytes = encode_matrix(&data).unwrap();
        // Truncated at every prefix: typed error, never a panic.
        for cut in 0..bytes.len() {
            assert!(decode_matrix(&bytes[..cut]).is_err(), "prefix {cut} passed");
        }
        // Any single-byte garble past the checksum fails the checksum;
        // a garble inside it fails the comparison too.
        let mut garbled = bytes.clone();
        garbled[HEADER_LEN + 3] ^= 0x40;
        assert!(matches!(
            decode_matrix(&garbled),
            Err(WireError::ChecksumMismatch { .. })
        ));
        // Trailing garbage is rejected.
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(decode_matrix(&padded).is_err());
        // Wrong magic and wrong kind are typed.
        let mut wrong = bytes.clone();
        wrong[0] = b'X';
        assert_eq!(decode_matrix(&wrong), Err(WireError::BadMagic));
        assert!(matches!(
            decode_tensor(&bytes),
            Err(WireError::WrongKind {
                expected: KIND_TENSOR,
                found: KIND_MATRIX
            })
        ));
    }

    #[test]
    fn job_and_result_frames_roundtrip() {
        let a = MatrixData::encode(&sample_coo(), &MatrixFormat::Csr).unwrap();
        let b = MatrixData::encode(&sample_coo(), &MatrixFormat::Zvc).unwrap();
        let job = WireJob {
            tenant: 7,
            priority: Priority::High,
            dtype: DataType::Fp32,
            a,
            b,
        };
        let bytes = encode_job(&job).unwrap();
        assert_eq!(decode_job(&bytes).unwrap(), job);

        let res = WireResult {
            job_id: 42,
            output: DenseMatrix::from_vec(2, 2, vec![1.0, -0.0, 0.0, 2.5]).unwrap(),
        };
        let back = decode_result(&encode_result(&res).unwrap()).unwrap();
        assert_eq!(back.job_id, 42);
        let bits: Vec<u64> = back.output.data().iter().map(|v| v.to_bits()).collect();
        let want: Vec<u64> = res.output.data().iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits, want, "result values must be bit-exact");
    }
}

//! # sparseflex-serve
//!
//! The multi-tenant serving layer in front of the `sparseflex-core`
//! planner/pipeline stack — the "sustained heterogeneous traffic" regime
//! where the paper's per-workload format selection (SAGE choosing an
//! MCF/ACF pair per job, MINT converting in hardware) actually pays off.
//!
//! Two modules:
//!
//! - [`wire`] — the compact binary frame format jobs and results travel
//!   in: a 16-byte header (magic, version, kind, FNV-1a body checksum)
//!   followed by a format tag, shape header, index arrays and IEEE-754
//!   values. Round-trips every matrix and tensor format in the
//!   workspace losslessly and rejects truncated or garbled frames with
//!   typed errors.
//! - [`service`] — [`FlexService`]: a bounded submission queue with
//!   admission control (queue-full backpressure + per-tenant in-flight
//!   caps), per-tenant weighted-fair stride scheduling with three
//!   priority classes, and a pool of persistent worker threads (virtual
//!   accelerator instances) with work stealing between per-worker
//!   deques, all sharing one plan cache sharded by key hash.
//!
//! ## Example
//!
//! ```
//! use sparseflex_core::FlexSystem;
//! use sparseflex_formats::{CooMatrix, DataType, MatrixData, MatrixFormat, SparseMatrix};
//! use sparseflex_serve::{wire, FlexService, Priority, ServeConfig, WireJob};
//!
//! let service = FlexService::start(FlexSystem::default(), ServeConfig::default()).unwrap();
//! let a = CooMatrix::from_triplets(4, 4, vec![(0, 0, 1.0), (2, 3, 2.0)]).unwrap();
//! let b = CooMatrix::from_triplets(4, 3, vec![(0, 1, 3.0), (3, 2, 4.0)]).unwrap();
//! let job = WireJob {
//!     tenant: 1,
//!     priority: Priority::Normal,
//!     dtype: DataType::Fp32,
//!     a: MatrixData::encode(&a, &MatrixFormat::Csr).unwrap(),
//!     b: MatrixData::encode(&b, &MatrixFormat::Zvc).unwrap(),
//! };
//! // Jobs travel as bytes: encode → submit → decode the result frame.
//! let frame = wire::encode_job(&job).unwrap();
//! let ticket = service.submit_frame(&frame).unwrap();
//! let outcome = ticket.wait().unwrap();
//! let result = wire::decode_result(&outcome.result_frame).unwrap();
//! assert_eq!(result.output.rows(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod service;
pub mod wire;

pub use service::{
    FlexService, JobOutcome, JobTicket, Priority, ServeConfig, ServeError, ServiceStats,
    StartError, SubmitError, TenantStats,
};
pub use wire::{WireError, WireJob, WireResult, WIRE_MAGIC, WIRE_VERSION};

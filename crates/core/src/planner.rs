//! The planning layer: one `Planner` producing [`ExecutionPlan`]s for
//! every run path, backed by a bounded LRU [`PlanCache`].
//!
//! Before this layer existed, each `FlexSystem` entry point re-derived
//! SAGE evaluations, tiling and MINT schedules inline. Now planning and
//! execution are split exactly where the paper splits them (Fig. 1b):
//!
//! ```text
//!               ┌───────────────────────────┐
//!   workload ──→│          PLANNER          │──→ ExecutionPlan
//!   operands    │ PlanCache ─ SAGE search   │      (typed IR)
//!               │ tiler schedule ─ overlap  │        │
//!               └───────────────────────────┘        ▼
//!               ┌───────────────────────────┐   execute_plan
//!               │  EXECUTOR (stage machine) │──→ PipelineRun + PlanTrace
//!               │  MINT convert ∥ accel     │
//!               └───────────────────────────┘
//! ```
//!
//! [`Planner::plan_job`] consults the cache (keyed on workload statistics
//! **and** the hardware fingerprint, so config changes invalidate
//! naturally), runs the SAGE search only on a miss, cuts the stationary
//! operand's column-tile schedule, and fills the per-tile cycle
//! prediction. [`Planner::execute_plan`] is the *only* place operands
//! meet the accelerator: the double-buffered convert∥compute stage
//! machine, shared verbatim by the monolithic, pipelined and batched
//! front-ends — which therefore cannot diverge.

use crate::calibrate::{Calibrator, Coefficients};
use crate::pipeline::{PipelineRun, TileTrace};
use crate::plan::{CostModel, Dataflow, ExecutionPlan, PlanPrediction, PlanTrace, TileCompare};
use crate::system::RunError;
use sparseflex_accel::exec::{simulate_spgemm, simulate_ws, SimResult};
use sparseflex_formats::{
    csr_cow, csr_cow_in, plan_column_schedule, tile_column_ranges, ArenaPool, ColumnSchedule,
    CooMatrix, CsrMatrix, DenseMatrix, MatrixData, MatrixFormat, MatrixTile, SparseMatrix,
    StreamArena, TilePolicy,
};
use sparseflex_kernels::parallel::worker_count;
use sparseflex_mint::tiled::{overlap_schedule, split_cycles};
use sparseflex_mint::{conversion_cost, ConversionReport};
use sparseflex_sage::eval::Evaluation;
use sparseflex_sage::{Sage, SageKernel, SageWorkload};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Which tiling discipline a plan should schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanDiscipline {
    /// One tile spanning the whole stationary operand (the classic
    /// convert-everything-then-compute path; operands must fit one
    /// scratchpad residency or execution fails recoverably).
    Monolithic,
    /// Scratchpad-sized column tiles with double-buffered conversion
    /// (the pipelined runtime; lifts the residency limit).
    Pipelined,
}

/// Key identifying a cached plan: the workload statistics SAGE's models
/// consume, the hardware-configuration fingerprint, and — for pinned
/// choices — the **format-descriptor fingerprint** of the choice. Equal
/// keys provably yield equal evaluations. Keying the format half on
/// descriptors (not the legacy enums) means the enum and descriptor
/// entry points share cache rows, and cached plans survive the enum's
/// deprecation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct PlanKey {
    kernel: SageKernel,
    m: usize,
    k: usize,
    n: usize,
    nnz_a: u64,
    nnz_b: u64,
    dtype: sparseflex_formats::DataType,
    hw: u64,
    /// The calibration generation the row was planned under: a
    /// [`Calibrator::recalibrate`] bump changes this for every new key,
    /// so exactly the rows planned under stale coefficients miss and
    /// replan.
    calibration: u64,
    /// `None` for free-search plans; the choice's
    /// [`FormatChoice::descriptor_fingerprint`] when pinned.
    choice: Option<u64>,
}

impl PlanKey {
    fn new(w: &SageWorkload, hw: u64, calibration: u64) -> Self {
        PlanKey {
            kernel: w.kernel,
            m: w.m,
            k: w.k,
            n: w.n,
            nnz_a: w.nnz_a,
            nnz_b: w.nnz_b,
            dtype: w.dtype,
            hw,
            calibration,
            choice: None,
        }
    }

    fn pinned(w: &SageWorkload, hw: u64, calibration: u64, choice_fingerprint: u64) -> Self {
        PlanKey {
            choice: Some(choice_fingerprint),
            ..PlanKey::new(w, hw, calibration)
        }
    }
}

/// Monotonic cache counters (snapshot with [`PlanCache::counters`];
/// subtract snapshots with [`CacheCounters::since`] to scope them to one
/// batch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheCounters {
    /// Searches skipped because the evaluation was cached.
    pub hits: u64,
    /// Full SAGE searches performed.
    pub misses: u64,
    /// Entries evicted to respect the capacity bound.
    pub evictions: u64,
}

impl CacheCounters {
    /// The delta between this snapshot and an `earlier` one.
    pub fn since(&self, earlier: CacheCounters) -> CacheCounters {
        CacheCounters {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            evictions: self.evictions - earlier.evictions,
        }
    }
}

#[derive(Debug, Clone, Default)]
struct LruState {
    /// Value plus last-touched tick per key.
    map: HashMap<PlanKey, (Evaluation, u64)>,
    tick: u64,
    counters: CacheCounters,
}

/// One lock domain of the sharded cache: an LRU map plus the counter of
/// lock acquisitions that found the mutex already held.
#[derive(Debug, Default)]
struct Shard {
    state: Mutex<LruState>,
    /// Acquisitions whose `try_lock` failed before blocking — the
    /// measured contention signal the serving bench tracks.
    contended: AtomicU64,
}

impl Shard {
    /// Lock the shard, counting the acquisition as contended when the
    /// mutex was already held by another worker.
    fn lock(&self) -> std::sync::MutexGuard<'_, LruState> {
        match self.state.try_lock() {
            Ok(g) => g,
            Err(std::sync::TryLockError::WouldBlock) => {
                self.contended.fetch_add(1, Ordering::Relaxed);
                self.state.lock().expect("plan cache poisoned")
            }
            Err(std::sync::TryLockError::Poisoned(_)) => panic!("plan cache poisoned"),
        }
    }
}

/// Thread-safe **bounded** cache of SAGE evaluations with LRU eviction,
/// optionally sharded by key hash.
///
/// The MCF×ACF search is the most expensive part of serving a small
/// workload; batches with repeated shapes (the common serving pattern)
/// pay it once. The cache holds at most `capacity` distinct shapes under
/// sustained traffic: inserting beyond a shard's bound evicts that
/// shard's least-recently-*used* entry (lookups refresh recency, so hot
/// shapes survive cold scans).
///
/// [`with_capacity`](PlanCache::with_capacity) builds the classic
/// single-lock cache (one shard, global LRU order);
/// [`with_shards`](PlanCache::with_shards) splits the key space across
/// `shards` independent locks so concurrent workers serving disjoint
/// shapes stop serializing on one mutex — the contention the serving
/// bench first measures on the single-lock layout and then removes.
/// Eviction order is LRU *per shard*; counters aggregate across shards
/// (per-shard snapshots via [`shard_counters`](PlanCache::shard_counters)).
#[derive(Debug)]
pub struct PlanCache {
    shards: Vec<Shard>,
    shard_capacity: usize,
}

/// Default number of distinct workload shapes a plan cache retains.
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 256;

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::with_capacity(DEFAULT_PLAN_CACHE_CAPACITY)
    }
}

impl Clone for PlanCache {
    fn clone(&self) -> Self {
        PlanCache {
            shards: self
                .shards
                .iter()
                .map(|s| Shard {
                    state: Mutex::new(s.state.lock().expect("plan cache poisoned").clone()),
                    contended: AtomicU64::new(0),
                })
                .collect(),
            shard_capacity: self.shard_capacity,
        }
    }
}

impl PlanCache {
    /// The classic single-lock cache bounded to `capacity` entries
    /// (clamped to at least 1), with exact global LRU order.
    pub fn with_capacity(capacity: usize) -> Self {
        PlanCache::with_shards(capacity, 1)
    }

    /// A cache of ~`capacity` total entries split across `shards`
    /// independent lock domains (both clamped to at least 1). Each shard
    /// is bounded to `ceil(capacity / shards)` entries, so the reported
    /// [`capacity`](PlanCache::capacity) may round up slightly.
    pub fn with_shards(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let shard_capacity = capacity.max(1).div_ceil(shards);
        PlanCache {
            shards: (0..shards).map(|_| Shard::default()).collect(),
            shard_capacity,
        }
    }

    /// The total capacity bound (summed across shards).
    pub fn capacity(&self) -> usize {
        self.shard_capacity * self.shards.len()
    }

    /// Number of independent lock domains.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard a key hashes to (stable within a process run).
    fn shard_index(&self, key: &PlanKey) -> usize {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) % self.shards.len()
    }

    fn lookup(&self, key: &PlanKey) -> Option<Evaluation> {
        let mut s = self.shards[self.shard_index(key)].lock();
        s.tick += 1;
        let tick = s.tick;
        match s.map.get_mut(key) {
            Some((eval, touched)) => {
                *touched = tick;
                let hit = eval.clone();
                s.counters.hits += 1;
                Some(hit)
            }
            None => {
                s.counters.misses += 1;
                None
            }
        }
    }

    fn insert(&self, key: PlanKey, eval: Evaluation) {
        let shard_capacity = self.shard_capacity;
        let mut s = self.shards[self.shard_index(&key)].lock();
        s.tick += 1;
        let tick = s.tick;
        if !s.map.contains_key(&key) && s.map.len() >= shard_capacity {
            // Evict the shard's least-recently-used entry (smallest tick).
            if let Some(oldest) = s
                .map
                .iter()
                .min_by_key(|(_, (_, touched))| *touched)
                .map(|(k, _)| *k)
            {
                s.map.remove(&oldest);
                s.counters.evictions += 1;
            }
        }
        s.map.insert(key, (eval, tick));
    }

    /// Searches skipped thanks to the cache.
    pub fn hits(&self) -> u64 {
        self.counters().hits
    }

    /// Full SAGE searches performed.
    pub fn misses(&self) -> u64 {
        self.counters().misses
    }

    /// Entries evicted to respect the capacity bound.
    pub fn evictions(&self) -> u64 {
        self.counters().evictions
    }

    /// Snapshot of all counters, aggregated across shards.
    pub fn counters(&self) -> CacheCounters {
        self.shard_counters()
            .into_iter()
            .fold(CacheCounters::default(), |acc, c| CacheCounters {
                hits: acc.hits + c.hits,
                misses: acc.misses + c.misses,
                evictions: acc.evictions + c.evictions,
            })
    }

    /// Per-shard counter snapshots, in shard order.
    pub fn shard_counters(&self) -> Vec<CacheCounters> {
        self.shards
            .iter()
            .map(|s| s.state.lock().expect("plan cache poisoned").counters)
            .collect()
    }

    /// Lock acquisitions that found the mutex already held, summed over
    /// shards — the measured-contention signal of the serving bench
    /// (reset never; subtract snapshots to scope a window).
    pub fn contended_acquisitions(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.contended.load(Ordering::Relaxed))
            .sum()
    }

    /// Distinct workload shapes currently cached, summed over shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.state.lock().expect("plan cache poisoned").map.len())
            .sum()
    }

    /// True when no plan has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The SAGE-driven planner: turns (operands, workload) into an
/// [`ExecutionPlan`] and executes plans on the accelerator. One planner
/// (and its cache) is shared by every `FlexSystem` run path and across
/// batch worker threads.
#[derive(Debug, Default)]
pub struct Planner {
    /// The bounded evaluation cache.
    pub cache: PlanCache,
    /// Cost model filling plan predictions ([`CostModel::Stats`] unless
    /// the caller opts into the dry-run validation oracle).
    pub cost_model: CostModel,
    /// Online calibration of the stats model: every executed plan's
    /// trace is recorded here, and [`Calibrator::recalibrate`] refits
    /// the per-lane coefficients that scale new stats predictions
    /// (bumping the generation invalidates stale cache rows).
    pub calibrator: Calibrator,
    /// Grow-only per-worker arena pool for the tile executor: the first
    /// pipelined run warms one arena per tile worker, later runs convert
    /// and simulate their tiles without fresh traversal allocations. A
    /// `Mutex` (not per-call arenas) because one planner is shared across
    /// batch worker threads; lock hold times are the lease/restore pair,
    /// never a whole execution.
    tile_arenas: Mutex<ArenaPool>,
}

impl Clone for Planner {
    /// Cloning shares no scratch: the clone starts with a fresh (empty,
    /// heap-free) arena pool and warms its own on first use.
    fn clone(&self) -> Self {
        Planner {
            cache: self.cache.clone(),
            cost_model: self.cost_model,
            calibrator: self.calibrator.clone(),
            tile_arenas: Mutex::new(ArenaPool::new()),
        }
    }
}

impl Planner {
    /// A planner with an explicit cache capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Planner {
            cache: PlanCache::with_capacity(capacity),
            cost_model: CostModel::default(),
            calibrator: Calibrator::default(),
            tile_arenas: Mutex::new(ArenaPool::new()),
        }
    }

    /// A planner using the given cost model for predictions.
    pub fn with_cost_model(cost_model: CostModel) -> Self {
        Planner {
            cache: PlanCache::default(),
            cost_model,
            calibrator: Calibrator::default(),
            tile_arenas: Mutex::new(ArenaPool::new()),
        }
    }

    /// A planner around an explicit (possibly sharded) cache — the hook
    /// the serving layer uses to swap in a
    /// [`PlanCache::with_shards`] cache for its worker pool.
    pub fn with_cache(cache: PlanCache) -> Self {
        Planner {
            cache,
            cost_model: CostModel::default(),
            calibrator: Calibrator::default(),
            tile_arenas: Mutex::new(ArenaPool::new()),
        }
    }

    /// The cache shard the (free-search) plan row for `w` lives in.
    ///
    /// `PlanKey` is private; this accessor exposes just the key→shard
    /// mapping so the serving bench's deterministic lock-service model
    /// can replay real workload streams against the true shard layout.
    pub fn cache_shard(&self, sage: &Sage, w: &SageWorkload) -> usize {
        let key = PlanKey::new(w, sage.config_fingerprint(), self.calibrator.generation());
        self.cache.shard_index(&key)
    }

    /// Fetch the evaluation for `w`, running the SAGE MCF×ACF search
    /// only on a cache miss. Returns the evaluation and whether it was
    /// served from cache. Keys include [`Sage::config_fingerprint`], so
    /// a reconfigured accelerator never reuses stale plans.
    pub fn evaluate_cached(&self, sage: &Sage, w: &SageWorkload) -> (Evaluation, bool) {
        let key = PlanKey::new(w, sage.config_fingerprint(), self.calibrator.generation());
        if let Some(hit) = self.cache.lookup(&key) {
            return (hit, true);
        }
        let eval = sage.recommend(w).best;
        self.cache.insert(key, eval.clone());
        (eval, false)
    }

    /// Fetch the evaluation for `w` with the format choice pinned,
    /// running SAGE's single-choice evaluator only on a cache miss. The
    /// cache row is keyed on the choice's **descriptor fingerprint**, so
    /// the legacy-enum and descriptor entry points hit the same rows for
    /// the same formats.
    pub fn evaluate_pinned_cached(
        &self,
        sage: &Sage,
        w: &SageWorkload,
        choice: &sparseflex_sage::FormatChoice,
    ) -> Result<(Evaluation, bool), RunError> {
        let key = PlanKey::pinned(
            w,
            sage.config_fingerprint(),
            self.calibrator.generation(),
            choice.descriptor_fingerprint(),
        );
        if let Some(hit) = self.cache.lookup(&key) {
            return Ok((hit, true));
        }
        let eval = sage
            .evaluate(w, choice, sparseflex_sage::eval::ConversionMode::Hardware)
            .map_err(RunError::from)?;
        self.cache.insert(key, eval.clone());
        Ok((eval, false))
    }

    /// Plan one job with the format choice pinned by the caller: the
    /// cached-or-evaluated budget for that exact choice, then the tile
    /// schedule and prediction — the caching complement of
    /// [`plan_pinned`](Self::plan_pinned) (which takes a pre-computed
    /// evaluation and never consults the cache).
    pub fn plan_with_formats(
        &self,
        sage: &Sage,
        a: &CooMatrix,
        b: &CooMatrix,
        w: &SageWorkload,
        choice: &sparseflex_sage::FormatChoice,
        discipline: PlanDiscipline,
    ) -> Result<ExecutionPlan, RunError> {
        let (evaluation, from_cache) = self.evaluate_pinned_cached(sage, w, choice)?;
        let mut plan = self.plan_pinned(sage, a, b, *w, evaluation, discipline)?;
        plan.from_cache = from_cache;
        Ok(plan)
    }

    /// Plan one job end-to-end: cached-or-searched SAGE evaluation, then
    /// the tile schedule and cycle prediction for the chosen discipline.
    pub fn plan_job(
        &self,
        sage: &Sage,
        a: &CooMatrix,
        b: &CooMatrix,
        w: &SageWorkload,
        discipline: PlanDiscipline,
    ) -> Result<ExecutionPlan, RunError> {
        let (evaluation, from_cache) = self.evaluate_cached(sage, w);
        let mut plan = self.plan_pinned(sage, a, b, *w, evaluation, discipline)?;
        plan.from_cache = from_cache;
        Ok(plan)
    }

    /// Plan with the evaluation pinned by the caller instead of searched
    /// (used by the `run_with_choice` / `run_pipelined_with_evaluation`
    /// front-ends and the property suites). The returned plan is marked
    /// `from_cache: false`; callers relaying a cached evaluation set the
    /// field themselves.
    pub fn plan_pinned(
        &self,
        sage: &Sage,
        a: &CooMatrix,
        b: &CooMatrix,
        workload: SageWorkload,
        evaluation: Evaluation,
        discipline: PlanDiscipline,
    ) -> Result<ExecutionPlan, RunError> {
        if a.cols() != b.rows() {
            return Err(RunError::ShapeMismatch {
                a_cols: a.cols(),
                b_rows: b.rows(),
            });
        }
        let choice = &evaluation.choice;
        let accel = &sage.accel;
        let spgemm = choice.acf_a == MatrixFormat::Csr && choice.acf_b == MatrixFormat::Csr;
        let dataflow = if spgemm {
            Dataflow::GustavsonSpGemm
        } else {
            Dataflow::WeightStationary
        };

        // ---- Tile schedule: cut the stationary operand per discipline.
        let b_mem = MatrixData::encode(b, &choice.mcf_b)?;
        let residency = accel.num_pes.max(1);
        let policy = match (discipline, dataflow) {
            (PlanDiscipline::Monolithic, _) => TilePolicy::Whole,
            (PlanDiscipline::Pipelined, Dataflow::GustavsonSpGemm) => TilePolicy::Bounded {
                // Gustavson PEs buffer whole compressed row segments (2
                // slots per entry): cap per-row entries per tile so no
                // stationary unit can overflow a buffer.
                max_row_entries: accel.pe_buffer_elems / 2,
                max_width: residency,
            },
            // WS tiles are one array residency wide (`num_pes` stationary
            // columns); the simulator splits K internally.
            (PlanDiscipline::Pipelined, Dataflow::WeightStationary) => {
                TilePolicy::Uniform { width: residency }
            }
        };
        let schedule =
            plan_column_schedule(&b_mem, policy).ok_or(RunError::StationaryTooLarge {
                needed: 2,
                available: accel.pe_buffer_elems,
            })?;

        // ---- Cycle prediction (stats predictions are scaled by the
        // calibrator's fitted coefficients; the structure oracle is
        // cycle-exact and takes none).
        let predicted = match self.cost_model {
            CostModel::Stats => {
                let coeffs = self.calibrator.coefficients();
                predict_stats(sage, a, b, &evaluation, &schedule, &coeffs, dataflow)
            }
            CostModel::Structure => predict_structure(
                sage,
                a,
                b,
                &evaluation,
                &schedule,
                spgemm,
                &self.tile_arenas,
            )?,
        };

        Ok(ExecutionPlan {
            workload,
            evaluation,
            dataflow,
            schedule,
            predicted,
            from_cache: false,
            calibration_generation: self.calibrator.generation(),
        })
    }

    /// Workload statistics derived from the operands and the pinned
    /// choice, for front-ends that pin an evaluation without supplying a
    /// [`SageWorkload`]. The kernel is inferred from what actually runs:
    /// a CSR×CSR ACF pair executes Gustavson SpGEMM, a fully dense B is
    /// an SpMM, anything else a sparse×sparse product. The datatype is
    /// the accelerator's configured element type — [`Evaluation`] does
    /// not carry one, so these stats label the plan record rather than
    /// drive any decision (pinned plans never search or cache).
    pub fn derive_workload(
        sage: &Sage,
        a: &CooMatrix,
        b: &CooMatrix,
        choice: &sparseflex_sage::FormatChoice,
    ) -> SageWorkload {
        let spgemm_pair = choice.acf_a == MatrixFormat::Csr && choice.acf_b == MatrixFormat::Csr;
        let b_dense = b.nnz() == b.rows() * b.cols();
        if !spgemm_pair && b_dense {
            SageWorkload::spmm(
                a.rows(),
                a.cols(),
                b.cols(),
                a.nnz() as u64,
                sage.accel.dtype,
            )
        } else {
            SageWorkload::spgemm(
                a.rows(),
                a.cols(),
                b.cols(),
                a.nnz() as u64,
                b.nnz() as u64,
                sage.accel.dtype,
            )
        }
    }

    /// Execute an [`ExecutionPlan`] on real operands: encode in the
    /// MCFs, convert the streaming operand once (pipeline prologue),
    /// then convert∥execute every scheduled stationary tile — on the
    /// modeled machine, MINT fills one staging buffer with tile *t+1*
    /// while the array computes tile *t*, a double-buffered overlap
    /// priced by the per-tile cycle lanes folded into the run's
    /// [`OverlapSchedule`](sparseflex_mint::OverlapSchedule). Every run
    /// path funnels through this one executor, and every run yields a
    /// [`PlanTrace`] comparing the plan's prediction against the
    /// measured cycles.
    pub fn execute_plan(
        &self,
        sage: &Sage,
        plan: &ExecutionPlan,
        a: &CooMatrix,
        b: &CooMatrix,
    ) -> Result<PipelineRun, RunError> {
        let choice = plan.choice();
        let spgemm = plan.dataflow == Dataflow::GustavsonSpGemm;
        let (a_acf, conv_a, tiles_mem, b_cols) =
            prepare_operands(sage, choice, &plan.schedule.ranges, a, b)?;
        let executed =
            convert_and_execute_tiles(sage, choice, spgemm, &a_acf, &tiles_mem, &self.tile_arenas)?;

        let mut output = DenseMatrix::zeros(a.rows(), b_cols);
        let mut tiles = Vec::with_capacity(tiles_mem.len());
        for (tile, (conv, sim)) in tiles_mem.iter().zip(executed) {
            stitch_columns(&mut output, &sim.output, tile.col_start);
            tiles.push(TileTrace {
                col_start: tile.col_start,
                col_end: tile.col_end,
                conv,
                compute: sim.cycles,
                counts: sim.counts,
                array_col_tiles: sim.n_tiles,
                k_passes: sim.k_passes,
            });
        }

        let conv_cycles: Vec<u64> = tiles.iter().map(|t| t.conv.pipelined_cycles()).collect();
        let compute_cycles: Vec<u64> = tiles.iter().map(|t| t.compute.total()).collect();
        let schedule = overlap_schedule(&conv_cycles, &compute_cycles);
        let trace = build_trace(plan, &tiles, schedule);
        // Close the loop: every executed stats plan feeds the online
        // calibrator (recalibration itself stays an explicit caller
        // decision, so predictions never shift mid-batch).
        self.calibrator.record_trace(plan.dataflow, &trace);
        Ok(PipelineRun {
            plan: plan.clone(),
            output,
            conv_a,
            tiles,
            trace,
        })
    }
}

/// Encode both operands in their MCFs, cut the stationary operand into
/// the scheduled tiles, and convert the streaming operand (the pipeline
/// prologue). A schedule consisting of one range spanning every column
/// (the monolithic discipline) uses the encoded operand directly instead
/// of round-tripping it through triplet extraction.
#[allow(clippy::type_complexity)]
fn prepare_operands(
    sage: &Sage,
    choice: &sparseflex_sage::FormatChoice,
    ranges: &[(usize, usize)],
    a: &CooMatrix,
    b: &CooMatrix,
) -> Result<(MatrixData, ConversionReport, Vec<MatrixTile>, usize), RunError> {
    let a_mem = MatrixData::encode(a, &choice.mcf_a)?;
    let b_mem = MatrixData::encode(b, &choice.mcf_b)?;
    let b_cols = b_mem.cols();
    let tiles_mem = if ranges == [(0, b_cols)] {
        vec![MatrixTile {
            col_start: 0,
            col_end: b_cols,
            data: b_mem,
        }]
    } else {
        tile_column_ranges(&b_mem, ranges)?
    };
    let (a_acf, conv_a) = sage.mint.convert_matrix(&a_mem, &choice.acf_a)?;
    Ok((a_acf, conv_a, tiles_mem, b_cols))
}

/// Convert each scheduled tile MCF→ACF and run it on the cycle-accurate
/// simulator — in parallel across tile workers when the schedule has more
/// than one tile. This is the **one** per-tile sequence shared by
/// `execute_plan` and the structure-model oracle, so the oracle's
/// cycle-exactness guarantee cannot drift from what execution does.
///
/// Tiles are chunked contiguously and each scoped worker leases one
/// grow-only arena from the planner's pool: the first run warms each
/// worker's buffers (traversal scratch and the recycled CSR triple),
/// later runs convert without fresh allocations. Tiles are independent
/// (disjoint column ranges, shared read-only `A`), so results are
/// identical to the sequential loop and re-assembled in schedule order.
fn convert_and_execute_tiles(
    sage: &Sage,
    choice: &sparseflex_sage::FormatChoice,
    spgemm: bool,
    a_acf: &MatrixData,
    tiles_mem: &[MatrixTile],
    pool: &Mutex<ArenaPool>,
) -> Result<Vec<(ConversionReport, SimResult)>, RunError> {
    let a_csr = if spgemm { Some(csr_cow(a_acf)) } else { None };
    let a_csr_ref = a_csr.as_deref();
    fn lock(p: &Mutex<ArenaPool>) -> std::sync::MutexGuard<'_, ArenaPool> {
        p.lock().unwrap_or_else(|e| e.into_inner())
    }
    let run_chunk = |tiles: &[MatrixTile], arena: &mut StreamArena| {
        tiles
            .iter()
            .map(|tile| {
                let (tile_acf, conv) = sage.mint.convert_matrix(&tile.data, &choice.acf_b)?;
                let sim = execute_tile(sage, arena, a_acf, a_csr_ref, &tile_acf, spgemm)?;
                Ok((conv, sim))
            })
            .collect::<Result<Vec<_>, RunError>>()
    };
    let workers = worker_count(tiles_mem.len());
    if workers <= 1 {
        let mut arenas = lock(pool).lease(1);
        let out = run_chunk(tiles_mem, &mut arenas[0]);
        lock(pool).restore(arenas);
        return out;
    }
    let chunk = tiles_mem.len().div_ceil(workers);
    let chunks: Vec<&[MatrixTile]> = tiles_mem.chunks(chunk).collect();
    let mut arenas = lock(pool).lease(chunks.len());
    let results: Vec<Result<Vec<(ConversionReport, SimResult)>, RunError>> =
        std::thread::scope(|s| {
            let handles: Vec<_> = chunks
                .iter()
                .zip(arenas.iter_mut())
                .map(|(tiles, arena)| {
                    let run_chunk = &run_chunk;
                    s.spawn(move || run_chunk(tiles, arena))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("tile worker panicked"))
                .collect()
        });
    // Arenas go back to the pool before error propagation so a failed
    // tile does not leak the warmed buffers.
    lock(pool).restore(arenas);
    let mut out = Vec::with_capacity(tiles_mem.len());
    for r in results {
        out.extend(r?);
    }
    Ok(out)
}

/// Stats-model prediction: SAGE's whole-operand analytic totals scaled
/// by the calibrator's fitted per-lane coefficients, then split across
/// tiles by stored-nonzero weight.
fn predict_stats(
    sage: &Sage,
    a: &CooMatrix,
    b: &CooMatrix,
    evaluation: &Evaluation,
    schedule: &ColumnSchedule,
    coeffs: &Coefficients,
    dataflow: Dataflow,
) -> PlanPrediction {
    let choice = &evaluation.choice;
    let conv_a = conversion_cost(
        &choice.mcf_a,
        &choice.acf_a,
        a.rows(),
        a.cols(),
        a.nnz() as u64,
        &sage.mint,
    )
    .cycles;
    let conv_b = conversion_cost(
        &choice.mcf_b,
        &choice.acf_b,
        b.rows(),
        b.cols(),
        b.nnz() as u64,
        &sage.mint,
    )
    .cycles;
    let per_tile_conv = split_cycles(conv_b as f64 * coeffs.conv, &schedule.tile_nnz);
    let per_tile_compute = split_cycles(
        evaluation.compute_cycles * coeffs.compute(dataflow),
        &schedule.tile_nnz,
    );
    PlanPrediction {
        cost_model: CostModel::Stats,
        conv_a_cycles: (conv_a as f64 * coeffs.conv).round() as u64,
        schedule: overlap_schedule(&per_tile_conv, &per_tile_compute),
        per_tile_conv,
        per_tile_compute,
    }
}

/// Structure-model prediction: a planning-time dry run over the actual
/// operand structure — every tile is converted and simulated once, so
/// predicted cycles equal the measured execution exactly. The
/// model-validation oracle; costs one extra execution per plan.
fn predict_structure(
    sage: &Sage,
    a: &CooMatrix,
    b: &CooMatrix,
    evaluation: &Evaluation,
    schedule: &ColumnSchedule,
    spgemm: bool,
    pool: &Mutex<ArenaPool>,
) -> Result<PlanPrediction, RunError> {
    let choice = &evaluation.choice;
    let (a_acf, conv_a, tiles_mem, _) = prepare_operands(sage, choice, &schedule.ranges, a, b)?;
    let executed = convert_and_execute_tiles(sage, choice, spgemm, &a_acf, &tiles_mem, pool)?;
    let per_tile_conv: Vec<u64> = executed
        .iter()
        .map(|(conv, _)| conv.pipelined_cycles())
        .collect();
    let per_tile_compute: Vec<u64> = executed.iter().map(|(_, sim)| sim.cycles.total()).collect();
    Ok(PlanPrediction {
        cost_model: CostModel::Structure,
        conv_a_cycles: conv_a.pipelined_cycles(),
        schedule: overlap_schedule(&per_tile_conv, &per_tile_compute),
        per_tile_conv,
        per_tile_compute,
    })
}

/// Run one converted stationary tile on the cycle-accurate simulator.
///
/// SpGEMM tiles that need a CSR view draw both the traversal scratch and
/// the CSR triple itself from `arena`, and hand the triple back
/// afterwards ([`StreamArena::recycle_csr`]) so the next tile
/// materializes without fresh allocations.
fn execute_tile(
    sage: &Sage,
    arena: &mut StreamArena,
    a_acf: &MatrixData,
    a_csr: Option<&CsrMatrix>,
    tile_acf: &MatrixData,
    spgemm: bool,
) -> Result<SimResult, RunError> {
    let sim = if spgemm {
        let a = a_csr.expect("CSR A is materialized for SpGEMM runs");
        let tile_csr = csr_cow_in(arena, tile_acf);
        let sim = simulate_spgemm(a, &tile_csr, &sage.accel)?;
        if let std::borrow::Cow::Owned(c) = tile_csr {
            arena.recycle_csr(c);
        }
        sim
    } else {
        simulate_ws(a_acf, tile_acf, &sage.accel)?
    };
    Ok(sim)
}

/// Fold the measured tile traces against the plan's prediction.
fn build_trace(
    plan: &ExecutionPlan,
    tiles: &[TileTrace],
    measured: sparseflex_mint::OverlapSchedule,
) -> PlanTrace {
    let compares = tiles
        .iter()
        .enumerate()
        .map(|(i, t)| TileCompare {
            col_start: t.col_start,
            col_end: t.col_end,
            predicted_conv_cycles: plan.predicted.per_tile_conv.get(i).copied().unwrap_or(0),
            measured_conv_cycles: t.conv.pipelined_cycles(),
            predicted_compute_cycles: plan.predicted.per_tile_compute.get(i).copied().unwrap_or(0),
            measured_compute_cycles: t.compute.total(),
        })
        .collect();
    PlanTrace {
        cost_model: plan.predicted.cost_model,
        tiles: compares,
        predicted_schedule: plan.predicted.schedule,
        measured_schedule: measured,
    }
}

/// Copy a tile's `m x width` output into the full output at column
/// `col_start` (tiles cover disjoint column ranges).
fn stitch_columns(output: &mut DenseMatrix, tile_out: &DenseMatrix, col_start: usize) {
    for r in 0..tile_out.rows() {
        let row = tile_out.row(r);
        for (j, &v) in row.iter().enumerate() {
            if v != 0.0 {
                output.set(r, col_start + j, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparseflex_formats::DataType;

    fn workload(seed: usize) -> SageWorkload {
        // Distinct shapes per seed so each gets its own cache key.
        SageWorkload::spgemm(
            100 + seed,
            100,
            50,
            1_000 + seed as u64,
            500,
            DataType::Fp32,
        )
    }

    #[test]
    fn cache_hits_and_misses_are_counted() {
        let sage = Sage::default();
        let planner = Planner::default();
        let (e1, cached1) = planner.evaluate_cached(&sage, &workload(0));
        assert!(!cached1);
        let (e2, cached2) = planner.evaluate_cached(&sage, &workload(0));
        assert!(cached2);
        assert_eq!(e1, e2, "cached evaluation must be the searched one");
        let c = planner.cache.counters();
        assert_eq!((c.hits, c.misses, c.evictions), (1, 1, 0));
        assert_eq!(planner.cache.len(), 1);
    }

    #[test]
    fn hardware_changes_invalidate_cached_plans() {
        let mut sage = Sage::default();
        let planner = Planner::default();
        planner.evaluate_cached(&sage, &workload(0));
        // Same workload, different hardware: must be a fresh search.
        sage.accel.num_pes /= 2;
        let (_, cached) = planner.evaluate_cached(&sage, &workload(0));
        assert!(!cached, "reconfigured hardware must not reuse stale plans");
        assert_eq!(planner.cache.len(), 2, "two distinct hardware keys");
    }

    #[test]
    fn eviction_is_lru_ordered() {
        let sage = Sage::default();
        let planner = Planner::with_capacity(2);
        // Fill: w0, w1.
        planner.evaluate_cached(&sage, &workload(0));
        planner.evaluate_cached(&sage, &workload(1));
        assert_eq!(planner.cache.evictions(), 0);
        // Insert w2 at capacity: w0 is the least recently used -> evicted.
        planner.evaluate_cached(&sage, &workload(2));
        assert_eq!(planner.cache.evictions(), 1);
        assert_eq!(planner.cache.len(), 2);
        let (_, w1_cached) = planner.evaluate_cached(&sage, &workload(1));
        assert!(w1_cached, "w1 must have survived the eviction");
        let (_, w0_cached) = planner.evaluate_cached(&sage, &workload(0));
        assert!(!w0_cached, "w0 was the LRU entry and must be gone");
    }

    #[test]
    fn lookups_refresh_recency() {
        let sage = Sage::default();
        let planner = Planner::with_capacity(2);
        planner.evaluate_cached(&sage, &workload(0)); // miss: {w0}
        planner.evaluate_cached(&sage, &workload(1)); // miss: {w0, w1}
        planner.evaluate_cached(&sage, &workload(0)); // hit: w0 now hot
        planner.evaluate_cached(&sage, &workload(2)); // evicts w1, not w0
        let (_, w0_cached) = planner.evaluate_cached(&sage, &workload(0));
        assert!(w0_cached, "the refreshed entry must survive");
        let (_, w1_cached) = planner.evaluate_cached(&sage, &workload(1));
        assert!(!w1_cached, "the stale entry must be the one evicted");
        assert_eq!(planner.cache.evictions(), 2);
    }

    #[test]
    fn capacity_bound_holds_under_sustained_traffic() {
        let sage = Sage::default();
        let planner = Planner::with_capacity(4);
        for i in 0..32 {
            planner.evaluate_cached(&sage, &workload(i));
        }
        assert_eq!(planner.cache.len(), 4, "cache must never exceed capacity");
        assert_eq!(planner.cache.evictions(), 28);
        assert_eq!(planner.cache.capacity(), 4);
    }

    #[test]
    fn counter_snapshots_subtract() {
        let sage = Sage::default();
        let planner = Planner::default();
        planner.evaluate_cached(&sage, &workload(0));
        let before = planner.cache.counters();
        planner.evaluate_cached(&sage, &workload(0));
        planner.evaluate_cached(&sage, &workload(1));
        let delta = planner.cache.counters().since(before);
        assert_eq!((delta.hits, delta.misses), (1, 1));
    }

    #[test]
    fn with_capacity_is_single_shard() {
        let cache = PlanCache::with_capacity(8);
        assert_eq!(cache.num_shards(), 1);
        assert_eq!(cache.capacity(), 8);
    }

    #[test]
    fn sharded_cache_aggregates_counters_and_len() {
        let sage = Sage::default();
        let planner = Planner::with_cache(PlanCache::with_shards(64, 8));
        assert_eq!(planner.cache.num_shards(), 8);
        assert_eq!(planner.cache.capacity(), 64);
        for i in 0..16 {
            planner.evaluate_cached(&sage, &workload(i)); // misses
        }
        for i in 0..16 {
            planner.evaluate_cached(&sage, &workload(i)); // hits
        }
        let c = planner.cache.counters();
        assert_eq!((c.hits, c.misses, c.evictions), (16, 16, 0));
        assert_eq!(planner.cache.len(), 16);
        let per_shard = planner.cache.shard_counters();
        assert_eq!(per_shard.len(), 8);
        assert_eq!(per_shard.iter().map(|c| c.hits).sum::<u64>(), 16);
        assert_eq!(per_shard.iter().map(|c| c.misses).sum::<u64>(), 16);
    }

    #[test]
    fn sharded_cache_still_bounds_and_serves_hits() {
        let sage = Sage::default();
        // Tiny per-shard bound: ceil(8/4) = 2 entries per shard.
        let planner = Planner::with_cache(PlanCache::with_shards(8, 4));
        for i in 0..64 {
            planner.evaluate_cached(&sage, &workload(i));
        }
        assert!(
            planner.cache.len() <= planner.cache.capacity(),
            "sharded cache must respect its total bound"
        );
        assert!(planner.cache.evictions() > 0);
        // A re-lookup of a just-inserted hot key must hit.
        planner.evaluate_cached(&sage, &workload(63));
        let (_, cached) = planner.evaluate_cached(&sage, &workload(63));
        assert!(cached);
    }

    #[test]
    fn shard_mapping_is_stable_and_in_range() {
        let sage = Sage::default();
        let planner = Planner::with_cache(PlanCache::with_shards(64, 8));
        for i in 0..32 {
            let s1 = planner.cache_shard(&sage, &workload(i));
            let s2 = planner.cache_shard(&sage, &workload(i));
            assert_eq!(s1, s2, "same key must always map to the same shard");
            assert!(s1 < planner.cache.num_shards());
        }
        // Distinct workloads must spread over more than one shard.
        let distinct: std::collections::HashSet<usize> = (0..32)
            .map(|i| planner.cache_shard(&sage, &workload(i)))
            .collect();
        assert!(distinct.len() > 1, "keys must not all land in one shard");
    }

    #[test]
    fn contended_acquisitions_start_at_zero() {
        let cache = PlanCache::with_shards(16, 4);
        assert_eq!(cache.contended_acquisitions(), 0);
    }
}

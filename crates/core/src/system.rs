//! The integrated system: SAGE planning, MINT conversion, accelerator
//! execution.

use crate::plan::{ExecutionPlan, PlanTrace};
use crate::planner::{PlanDiscipline, Planner};
use sparseflex_accel::exec::{simulate_ws, SimError, SimResult};
use sparseflex_accel::taxonomy::AcceleratorClass;
use sparseflex_formats::{
    csr_from_stream, encode_with_descriptor, CooMatrix, CsrMatrix, DenseMatrix, FormatDescriptor,
    FormatError, MatrixData, MatrixEncoding, MatrixFormat, SparseMatrix,
};
use sparseflex_mint::ConversionReport;
use sparseflex_sage::eval::ConversionMode;
use sparseflex_sage::{DescriptorChoice, Evaluation, FormatChoice, Sage, SageWorkload};
use std::fmt;

/// Errors an end-to-end run can raise, typed so callers can distinguish
/// the recoverable cases from genuine misconfiguration.
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// An indivisible stationary unit (one compressed column or row of
    /// the stationary operand) needs more PE-buffer slots than exist.
    ///
    /// Usually **recoverable** (see [`RunError::is_recoverable`]): the
    /// tile-grained pipeline ([`FlexSystem::run_pipelined`] /
    /// [`FlexSystem::run_batch`]) splits the stationary operand into
    /// column tiles until every unit fits, so the same workload runs
    /// there. Only a buffer too small for even a single compressed pair
    /// (`available < 2`) cannot be tiled around.
    StationaryTooLarge {
        /// Slots the indivisible unit requires.
        needed: usize,
        /// Slots one PE buffer provides.
        available: usize,
    },
    /// The planned ACF pair is not executable on the WS array.
    UnsupportedChoice {
        /// Streaming-operand compute format.
        a: MatrixFormat,
        /// Stationary-operand compute format.
        b: MatrixFormat,
    },
    /// Operand shapes disagree (`A` columns vs `B` rows).
    ShapeMismatch {
        /// Columns of A.
        a_cols: usize,
        /// Rows of B.
        b_rows: usize,
    },
    /// Encoding or converting an operand failed structurally.
    Format(FormatError),
}

impl RunError {
    /// True when retrying through the tiled pipeline can succeed: the
    /// stationary operand merely exceeded one scratchpad residency, and
    /// the buffer can hold at least one compressed `(index, value)` pair
    /// — the narrowest unit column tiling can produce. A buffer below two
    /// slots cannot be fixed by any tiling, so it is reported as
    /// unrecoverable (retry loops would fail identically forever).
    pub fn is_recoverable(&self) -> bool {
        matches!(self, RunError::StationaryTooLarge { available, .. } if *available >= 2)
    }
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::StationaryTooLarge { needed, available } => {
                let hint = if *available >= 2 {
                    " (recoverable: run through the tiled pipeline)"
                } else {
                    ""
                };
                write!(
                    f,
                    "stationary unit needs {needed} slots, PE buffer has {available}{hint}"
                )
            }
            RunError::UnsupportedChoice { a, b } => {
                write!(f, "unsupported ACF pair {a}(A)-{b}(B) on the WS array")
            }
            RunError::ShapeMismatch { a_cols, b_rows } => {
                write!(
                    f,
                    "dimension mismatch: A has {a_cols} cols, B has {b_rows} rows"
                )
            }
            RunError::Format(e) => write!(f, "operand encoding failed: {e}"),
        }
    }
}

impl std::error::Error for RunError {}

impl From<SimError> for RunError {
    fn from(e: SimError) -> Self {
        match e {
            SimError::BufferTooSmall { needed, available } => {
                RunError::StationaryTooLarge { needed, available }
            }
            SimError::UnsupportedAcf { a, b } => RunError::UnsupportedChoice { a, b },
            SimError::DimMismatch { a_cols, b_rows } => RunError::ShapeMismatch { a_cols, b_rows },
        }
    }
}

impl From<FormatError> for RunError {
    fn from(e: FormatError) -> Self {
        RunError::Format(e)
    }
}

/// The `Flex_Flex_HW` system: SAGE + MINT + the flexible-ACF accelerator.
#[derive(Debug, Clone, Default)]
pub struct FlexSystem {
    /// The SAGE predictor (owns the accelerator/DRAM/MINT models).
    pub sage: Sage,
    /// The planning layer every run path routes through: produces
    /// [`ExecutionPlan`]s, owns the bounded LRU plan cache (shared
    /// across entry points, batch calls and worker threads), and
    /// executes plans on the accelerator.
    pub planner: Planner,
}

/// The analytic plan SAGE produces for a workload.
#[derive(Debug, Clone)]
pub struct SystemPlan {
    /// The winning evaluation (choice + breakdown).
    pub evaluation: Evaluation,
    /// Candidates SAGE searched.
    pub candidates: usize,
}

/// One Table II baseline's best achievable result on a workload.
#[derive(Debug, Clone)]
pub struct ClassComparison {
    /// Taxonomy name (`Fix_Fix_None` ...).
    pub class_name: &'static str,
    /// Representative design.
    pub example: &'static str,
    /// Best evaluation within the class's format freedom (None when the
    /// class cannot run the kernel at all).
    pub best: Option<Evaluation>,
}

/// Result of a functional end-to-end run.
#[derive(Debug)]
pub struct FunctionalRun {
    /// MINT conversion report for operand A (empty when MCF == ACF).
    pub conv_a: ConversionReport,
    /// MINT conversion report for operand B.
    pub conv_b: ConversionReport,
    /// Cycle-accurate simulation result (output + cycles + activity).
    pub sim: SimResult,
    /// The monolithic (single-tile) plan the run executed.
    pub plan: ExecutionPlan,
    /// Predicted vs measured cycles for the executed plan.
    pub trace: PlanTrace,
}

impl FunctionalRun {
    /// The evaluation the run executed (SAGE's choice or the caller's).
    pub fn evaluation(&self) -> &Evaluation {
        &self.plan.evaluation
    }
}

/// Result of an end-to-end run whose memory formats were open
/// descriptor compositions (see [`FlexSystem::run_custom_mcf`]).
#[derive(Debug)]
pub struct CustomRun {
    /// Operand A as encoded per its memory descriptor.
    pub mcf_a: MatrixEncoding,
    /// Operand B as encoded per its memory descriptor.
    pub mcf_b: MatrixEncoding,
    /// Exact storage footprint of A's memory encoding (bits).
    pub mcf_a_bits: u64,
    /// Exact storage footprint of B's memory encoding (bits).
    pub mcf_b_bits: u64,
    /// Cycle-accurate simulation result (output + cycles + activity).
    pub sim: SimResult,
}

impl CustomRun {
    /// The computed output.
    pub fn output(&self) -> &DenseMatrix {
        &self.sim.output
    }
}

impl FlexSystem {
    /// Build a system around a configured SAGE instance.
    pub fn new(sage: Sage) -> Self {
        FlexSystem {
            sage,
            planner: Planner::default(),
        }
    }

    /// Analytic plan: SAGE searches the full MCF x ACF space.
    pub fn plan(&self, w: &SageWorkload) -> SystemPlan {
        let rec = self.sage.recommend(w);
        SystemPlan {
            evaluation: rec.best,
            candidates: rec.candidates,
        }
    }

    /// Best evaluation per Table II accelerator class (the Fig. 12/13
    /// comparison row).
    pub fn compare_classes(&self, w: &SageWorkload) -> Vec<ClassComparison> {
        AcceleratorClass::table2_suite()
            .into_iter()
            .map(|class| ClassComparison {
                class_name: class.name,
                example: class.example,
                best: self.sage.recommend_for_class(w, &class).map(|r| r.best),
            })
            .collect()
    }

    /// Functional end-to-end run on real (small) operands:
    ///
    /// 1. The [`Planner`] plans the job: SAGE's MCF/ACF choice (cached
    ///    or searched) captured in a single-tile [`ExecutionPlan`].
    /// 2. Operands are *stored* in their MCFs (as they would arrive from
    ///    DRAM).
    /// 3. MINT's block engine converts MCF → ACF — the **whole** operand
    ///    at once, strictly before compute.
    /// 4. The cycle-accurate WS simulator executes the kernel.
    ///
    /// This is the monolithic (serial) path: operands must fit one
    /// scratchpad residency, or the run fails with the recoverable
    /// [`RunError::StationaryTooLarge`] — which the tile-grained
    /// [`FlexSystem::run_pipelined`] renders unreachable by splitting the
    /// stationary operand. Internally it is the same planner + executor
    /// as every other run path, scheduled with one tile spanning all
    /// stationary columns.
    pub fn run_functional(
        &self,
        a: &CooMatrix,
        b: &CooMatrix,
        w: &SageWorkload,
    ) -> Result<FunctionalRun, RunError> {
        let plan = self
            .planner
            .plan_job(&self.sage, a, b, w, PlanDiscipline::Monolithic)?;
        self.execute_monolithic(&plan, a, b)
    }

    /// [`run_functional`](Self::run_functional) with the format choice
    /// pinned by the caller instead of planned by SAGE (the evaluation is
    /// carried through to the result unchanged).
    pub fn run_with_choice(
        &self,
        a: &CooMatrix,
        b: &CooMatrix,
        evaluation: Evaluation,
    ) -> Result<FunctionalRun, RunError> {
        let w = Planner::derive_workload(&self.sage, a, b, &evaluation.choice);
        let plan = self.planner.plan_pinned(
            &self.sage,
            a,
            b,
            w,
            evaluation,
            PlanDiscipline::Monolithic,
        )?;
        self.execute_monolithic(&plan, a, b)
    }

    /// [`run_functional`](Self::run_functional) with the four formats
    /// pinned by the caller: SAGE evaluates (or serves from cache) that
    /// exact choice instead of searching. Cache rows are keyed on the
    /// choice's descriptor fingerprint, so this entry point and
    /// [`run_with_descriptors`](Self::run_with_descriptors) share them.
    pub fn run_with_formats(
        &self,
        a: &CooMatrix,
        b: &CooMatrix,
        w: &SageWorkload,
        choice: &FormatChoice,
    ) -> Result<FunctionalRun, RunError> {
        let plan = self.planner.plan_with_formats(
            &self.sage,
            a,
            b,
            w,
            choice,
            PlanDiscipline::Monolithic,
        )?;
        self.execute_monolithic(&plan, a, b)
    }

    /// The descriptor spelling of [`run_with_formats`](Self::run_with_formats):
    /// preset descriptors translate to the legacy choice and hit the
    /// same plan-cache rows. Open (non-preset) compositions are MCF-only
    /// constructs — run them through
    /// [`run_custom_mcf`](Self::run_custom_mcf) instead.
    pub fn run_with_descriptors(
        &self,
        a: &CooMatrix,
        b: &CooMatrix,
        w: &SageWorkload,
        choice: &DescriptorChoice,
    ) -> Result<FunctionalRun, RunError> {
        let legacy =
            choice
                .to_format_choice()
                .ok_or(RunError::Format(FormatError::Unsupported(
                    "open compositions have no compute-format mapping; use run_custom_mcf",
                )))?;
        self.run_with_formats(a, b, w, &legacy)
    }

    /// Execute a workload whose **memory formats** are open descriptor
    /// compositions (no legacy enum name required): each operand is
    /// encoded exactly per its descriptor
    /// ([`CustomMatrix`](sparseflex_formats::CustomMatrix) level
    /// storage for non-presets), decoded through the format-agnostic
    /// fiber stream into the accelerator's CSR×Dense compute formats,
    /// and run on the cycle-accurate weight-stationary simulator.
    pub fn run_custom_mcf(
        &self,
        a: &CooMatrix,
        b: &CooMatrix,
        mcf_a: &FormatDescriptor,
        mcf_b: &FormatDescriptor,
    ) -> Result<CustomRun, RunError> {
        if a.cols() != b.rows() {
            return Err(RunError::ShapeMismatch {
                a_cols: a.cols(),
                b_rows: b.rows(),
            });
        }
        let a_mem = encode_with_descriptor(a, mcf_a)?;
        let b_mem = encode_with_descriptor(b, mcf_b)?;
        let dtype = self.sage.accel.dtype;
        let (mcf_a_bits, mcf_b_bits) = (a_mem.storage_bits(dtype), b_mem.storage_bits(dtype));
        // MCF -> ACF: decode each operand's fiber stream into the
        // compute formats (CSR streaming, dense stationary).
        let a_acf = MatrixData::Csr(csr_from_stream(a.rows(), a.cols(), a_mem.row_stream()));
        let mut b_dense = DenseMatrix::zeros(b.rows(), b.cols());
        b_mem.row_stream().for_each_nnz(&mut |r, c, v| {
            b_dense.set(r, c, v);
        });
        let b_acf = MatrixData::Dense(b_dense);
        let sim = simulate_ws(&a_acf, &b_acf, &self.sage.accel)?;
        Ok(CustomRun {
            mcf_a: a_mem,
            mcf_b: b_mem,
            mcf_a_bits,
            mcf_b_bits,
            sim,
        })
    }

    /// Execute a monolithic (single-tile) plan and repackage the one
    /// tile's results in the classic [`FunctionalRun`] shape.
    fn execute_monolithic(
        &self,
        plan: &ExecutionPlan,
        a: &CooMatrix,
        b: &CooMatrix,
    ) -> Result<FunctionalRun, RunError> {
        let run = self.planner.execute_plan(&self.sage, plan, a, b)?;
        let tile = run
            .tiles
            .into_iter()
            .next()
            .expect("a monolithic plan schedules exactly one tile");
        Ok(FunctionalRun {
            conv_a: run.conv_a,
            conv_b: tile.conv,
            sim: SimResult {
                output: run.output,
                cycles: tile.compute,
                counts: tile.counts,
                n_tiles: tile.array_col_tiles,
                k_passes: tile.k_passes,
            },
            plan: run.plan,
            trace: run.trace,
        })
    }

    /// Software reference output for verification.
    pub fn reference_output(a: &CooMatrix, b: &CooMatrix) -> DenseMatrix {
        let a_csr = MatrixData::Csr(CsrMatrix::from_coo(a));
        let b_dense = b.clone().into_dense();
        sparseflex_kernels::spmm(&a_csr, &b_dense).expect("operand shapes agree by construction")
    }

    /// Normalized-EDP table (Fig. 13): every class's best EDP divided by
    /// this work's, per workload; `None` for classes that cannot run it.
    pub fn normalized_edp(&self, w: &SageWorkload) -> Vec<(&'static str, Option<f64>)> {
        let clock = self.sage.accel.clock_hz;
        let ours = self.plan(w).evaluation.edp(clock);
        self.compare_classes(w)
            .into_iter()
            .map(|c| (c.class_name, c.best.map(|b| b.edp(clock) / ours)))
            .collect()
    }

    /// The conversion mode this system uses (hardware MINT).
    pub fn conversion_mode(&self) -> ConversionMode {
        ConversionMode::Hardware
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparseflex_formats::{DataType, SparseMatrix};
    use sparseflex_workloads::synth::random_matrix;

    fn workload_from(a: &CooMatrix, b: &CooMatrix, spgemm: bool) -> SageWorkload {
        if spgemm {
            SageWorkload::spgemm(
                a.rows(),
                a.cols(),
                b.cols(),
                a.nnz() as u64,
                b.nnz() as u64,
                DataType::Fp32,
            )
        } else {
            SageWorkload::spmm(a.rows(), a.cols(), b.cols(), a.nnz() as u64, DataType::Fp32)
        }
    }

    #[test]
    fn functional_run_produces_correct_output() {
        // A small SpGEMM through the full SAGE -> MINT -> accel path.
        let a = random_matrix(24, 32, 80, 1);
        let b = random_matrix(32, 20, 60, 2);
        let w = workload_from(&a, &b, true);
        // Use the small walkthrough-scale accelerator so tiling kicks in.
        let mut sys = FlexSystem::default();
        sys.sage.accel.num_pes = 8;
        sys.sage.accel.pe_buffer_elems = 64;
        let run = sys.run_functional(&a, &b, &w).unwrap();
        let expect =
            sparseflex_kernels::gemm::gemm_naive(&a.clone().into_dense(), &b.clone().into_dense());
        assert!(
            run.sim.output.approx_eq(&expect, 1e-9),
            "functional output mismatch for choice {}",
            run.evaluation().choice
        );
    }

    #[test]
    fn functional_run_spmm_dense_b() {
        let a = random_matrix(16, 24, 60, 3);
        let b = random_matrix(24, 12, 24 * 12, 4); // fully dense B
        let w = workload_from(&a, &b, false);
        let mut sys = FlexSystem::default();
        sys.sage.accel.num_pes = 16;
        sys.sage.accel.pe_buffer_elems = 64;
        let run = sys.run_functional(&a, &b, &w).unwrap();
        let expect =
            sparseflex_kernels::gemm::gemm_naive(&a.clone().into_dense(), &b.clone().into_dense());
        assert!(run.sim.output.approx_eq(&expect, 1e-9));
        // SpMM with dense B: SAGE must not pick a compressed ACF for B
        // (nothing to compress).
        assert_eq!(run.evaluation().choice.acf_b, MatrixFormat::Dense);
    }

    #[test]
    fn this_work_never_loses_the_class_comparison() {
        let sys = FlexSystem::default();
        let w = SageWorkload::spgemm(7_700, 2_600, 3_850, 1_000_000, 500_000, DataType::Fp32);
        for (name, norm) in sys.normalized_edp(&w) {
            if let Some(x) = norm {
                assert!(x >= 0.999, "{name} has normalized EDP {x} < 1");
            }
        }
    }

    #[test]
    fn class_comparison_covers_table2() {
        let sys = FlexSystem::default();
        let w = SageWorkload::spmm(1_000, 1_000, 500, 10_000, DataType::Fp32);
        let rows = sys.compare_classes(&w);
        assert_eq!(rows.len(), 7);
        assert!(rows.iter().any(|r| r.class_name == "Flex_Flex_HW"));
        // TPU (dense only) can always run (densely).
        let tpu = rows
            .iter()
            .find(|r| r.class_name == "Fix_Fix_None")
            .unwrap();
        assert!(tpu.best.is_some());
    }

    #[test]
    fn plan_reports_search_size() {
        let sys = FlexSystem::default();
        let w = SageWorkload::spgemm(500, 500, 250, 2_500, 1_250, DataType::Fp32);
        let plan = sys.plan(&w);
        assert!(plan.candidates > 50);
        assert!(plan.evaluation.total_cycles() > 0.0);
    }
}

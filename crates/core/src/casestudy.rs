//! The §VII-D convolutional-network case study plumbing.
//!
//! Each Fig. 14a layer becomes an im2col GEMM (`M = batch*H*W`,
//! `K = C*R*S`, `N = K_out`) whose operand densities come from the
//! published activation/weight sparsities. [`layer_edp`] evaluates one
//! layer under one pruning strategy for this work and every baseline.

use crate::system::FlexSystem;
use sparseflex_formats::DataType;
use sparseflex_sage::SageWorkload;

/// EDP results for one conv layer under one pruning strategy.
#[derive(Debug, Clone)]
pub struct LayerEdp {
    /// Layer id (1-8).
    pub layer_id: usize,
    /// GEMM dims after im2col.
    pub gemm_dims: (usize, usize, usize),
    /// This work's EDP (J*s).
    pub this_work: f64,
    /// `(class name, EDP)` for each Table II baseline that can run it.
    pub baselines: Vec<(&'static str, Option<f64>)>,
}

/// Evaluate one ResNet layer (as an im2col GEMM) under given densities.
///
/// `act_density` and `weight_density` are fractions of nonzeros; the
/// activation matrix streams (operand A), the weight matrix is stationary
/// (operand B) — matching the WS dataflow of §IV.
pub fn layer_edp(
    system: &FlexSystem,
    layer_id: usize,
    gemm_dims: (usize, usize, usize),
    act_density: f64,
    weight_density: f64,
) -> LayerEdp {
    let (m, k, n) = gemm_dims;
    let nnz_a = ((m as f64 * k as f64) * act_density).round().max(1.0) as u64;
    let nnz_b = ((k as f64 * n as f64) * weight_density).round().max(1.0) as u64;
    let w = SageWorkload::spgemm(m, k, n, nnz_a, nnz_b, DataType::Fp32);
    let clock = system.sage.accel.clock_hz;
    let ours = system.plan(&w).evaluation.edp(clock);
    let baselines = system
        .compare_classes(&w)
        .into_iter()
        .filter(|c| c.class_name != "Flex_Flex_HW")
        .map(|c| (c.class_name, c.best.map(|b| b.edp(clock))))
        .collect();
    LayerEdp {
        layer_id,
        gemm_dims,
        this_work: ours,
        baselines,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparseflex_workloads::{PruningStrategy, RESNET_LAYERS};

    #[test]
    fn layer8_global_prune_benefits_from_flexibility() {
        // Layer 8 under 70% global pruning is 98.4% weight-sparse: the
        // flexible system must beat the dense-only TPU class by a wide
        // margin.
        let sys = FlexSystem::default();
        let l = &RESNET_LAYERS[7];
        let s = PruningStrategy::GlobalPrune70;
        let r = layer_edp(
            &sys,
            l.id,
            l.gemm_dims(4), // small batch keeps the model fast
            l.act_density(s),
            l.weight_density(s),
        );
        let tpu = r
            .baselines
            .iter()
            .find(|(n, _)| *n == "Fix_Fix_None")
            .and_then(|(_, e)| *e)
            .expect("TPU class always evaluates");
        assert!(
            r.this_work < tpu * 0.8,
            "this work {} should clearly beat TPU {}",
            r.this_work,
            tpu
        );
    }

    #[test]
    fn every_layer_evaluates_under_every_strategy() {
        let sys = FlexSystem::default();
        for l in &RESNET_LAYERS {
            for s in PruningStrategy::all() {
                let r = layer_edp(
                    &sys,
                    l.id,
                    l.gemm_dims(1),
                    l.act_density(s),
                    l.weight_density(s),
                );
                assert!(r.this_work > 0.0, "layer {} strategy {:?}", l.id, s);
                for (name, edp) in &r.baselines {
                    if let Some(e) = edp {
                        assert!(
                            *e >= r.this_work * 0.999,
                            "layer {} {:?}: {name} beats this work",
                            l.id,
                            s
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn sparser_weights_reduce_our_edp() {
        // Fig. 14b: on late layers, global pruning (far sparser weights)
        // lowers EDP relative to the unpruned network.
        let sys = FlexSystem::default();
        let l = &RESNET_LAYERS[7];
        let normal = layer_edp(
            &sys,
            l.id,
            l.gemm_dims(4),
            l.act_density(PruningStrategy::Normal),
            l.weight_density(PruningStrategy::Normal),
        );
        let pruned = layer_edp(
            &sys,
            l.id,
            l.gemm_dims(4),
            l.act_density(PruningStrategy::GlobalPrune70),
            l.weight_density(PruningStrategy::GlobalPrune70),
        );
        assert!(
            pruned.this_work < normal.this_work,
            "pruned {} vs normal {}",
            pruned.this_work,
            normal.this_work
        );
    }
}

//! The `ExecutionPlan` IR: everything the system decides *before* it
//! touches the accelerator, captured as one typed value.
//!
//! The paper's architecture (Fig. 1b) is plan-then-run: SAGE picks the
//! MCF/ACF pair, MINT is configured, and only then does the accelerator
//! execute. This module is that boundary made explicit. A plan records,
//! per job:
//!
//! - the chosen MCF/ACF per operand and SAGE's full cost breakdown (the
//!   [`Evaluation`] budget),
//! - the stationary-operand column-tile schedule (the tiler's exported
//!   [`ColumnSchedule`]),
//! - the predicted MINT-conversion / compute overlap schedule (the
//!   per-tile cycle lanes folded by `mint::tiled::overlap_schedule`).
//!
//! Executing a plan yields a [`PlanTrace`] — predicted vs measured
//! cycles per tile — so the cost model is *validated* on every run, not
//! assumed. [`ExecutionPlan::explain`] renders the whole decision as a
//! human-readable dump (see `examples/plan_explain.rs`).

use sparseflex_formats::ColumnSchedule;
use sparseflex_mint::OverlapSchedule;
use sparseflex_sage::eval::Evaluation;
use sparseflex_sage::{FormatChoice, SageKernel, SageWorkload};
use std::fmt::Write as _;

/// Which cost model the planner used to fill a plan's prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CostModel {
    /// SAGE's analytic models over workload statistics (cheap; per-tile
    /// cycles are whole-operand totals split by tile nonzero weight).
    #[default]
    Stats,
    /// A planning-time dry run over the *actual operand structure*: each
    /// tile is converted and simulated once while planning, so the
    /// prediction matches the measured execution cycle-for-cycle. This
    /// is the model-validation oracle — it costs one extra execution.
    Structure,
}

impl std::fmt::Display for CostModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CostModel::Stats => write!(f, "stats"),
            CostModel::Structure => write!(f, "structure"),
        }
    }
}

/// The dataflow a plan executes under (decided by the ACF pair).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dataflow {
    /// CSR(A) x CSR(B) row-wise product (Gustavson) on the sparse PEs.
    GustavsonSpGemm,
    /// The weight-stationary array (B stationary, A streamed).
    WeightStationary,
}

impl std::fmt::Display for Dataflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Dataflow::GustavsonSpGemm => write!(f, "Gustavson SpGEMM"),
            Dataflow::WeightStationary => write!(f, "weight-stationary"),
        }
    }
}

/// The planner's a-priori cycle picture of one job, tile by tile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanPrediction {
    /// Cost model that produced the numbers.
    pub cost_model: CostModel,
    /// Predicted MINT cycles to convert the streaming operand A
    /// (pipeline prologue; hidden only behind A's own DRAM fetch).
    pub conv_a_cycles: u64,
    /// Predicted MINT conversion cycles per stationary tile.
    pub per_tile_conv: Vec<u64>,
    /// Predicted accelerator compute cycles per stationary tile.
    pub per_tile_compute: Vec<u64>,
    /// The two lanes folded into predicted overlapped vs serial totals.
    pub schedule: OverlapSchedule,
}

impl PlanPrediction {
    /// Predicted compute cycles summed over all tiles.
    pub fn compute_cycles(&self) -> u64 {
        self.per_tile_compute.iter().sum()
    }

    /// Predicted stationary-operand conversion cycles summed over all
    /// tiles (excludes the A prologue).
    pub fn conversion_cycles(&self) -> u64 {
        self.per_tile_conv.iter().sum()
    }
}

/// One job's complete pre-execution decision record.
///
/// Produced by the `Planner` (`plan_job`), consumed by `execute_plan`;
/// the evaluation half is what the bounded plan cache stores and reuses
/// across jobs with equal workload statistics and hardware config.
#[derive(Debug, Clone)]
pub struct ExecutionPlan {
    /// The workload statistics the plan was made for (the cache key's
    /// workload half).
    pub workload: SageWorkload,
    /// SAGE's winning (or caller-pinned) evaluation: format choice plus
    /// the predicted DRAM/conversion/compute budget.
    pub evaluation: Evaluation,
    /// The dataflow the ACF pair selects.
    pub dataflow: Dataflow,
    /// Column-tile schedule of the stationary operand.
    pub schedule: ColumnSchedule,
    /// Per-tile cycle prediction.
    pub predicted: PlanPrediction,
    /// True when the evaluation was served from the plan cache rather
    /// than searched.
    pub from_cache: bool,
    /// The calibration generation the stats prediction was scaled under
    /// (0 = the uncalibrated analytic model). Part of the plan-cache
    /// key: a recalibration bump invalidates rows planned under older
    /// coefficients.
    pub calibration_generation: u64,
}

impl ExecutionPlan {
    /// The format choice the plan executes.
    pub fn choice(&self) -> &FormatChoice {
        &self.evaluation.choice
    }

    /// Stable fingerprint of the plan's four format descriptors — the
    /// format identity plan caches and persisted artifacts key on (equal
    /// for the enum and descriptor spellings of the same choice, and
    /// independent of the legacy enums' representation).
    pub fn choice_fingerprint(&self) -> u64 {
        self.evaluation.choice.descriptor_fingerprint()
    }

    /// Number of stationary column tiles the plan schedules.
    pub fn tiles(&self) -> usize {
        self.schedule.len()
    }

    /// Human-readable plan dump: workload, decision, schedule, budget.
    ///
    /// The paper's SAGE answers *which* formats; `explain` also answers
    /// *why the runtime will behave as it does* — tile count and policy,
    /// the predicted overlap, and whether the decision was cached.
    pub fn explain(&self) -> String {
        let w = &self.workload;
        let e = &self.evaluation;
        let kernel = match w.kernel {
            SageKernel::SpMm => "SpMM",
            SageKernel::SpGemm => "SpGEMM",
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "ExecutionPlan: {kernel} {}x{}x{} (nnz_a={}, nnz_b={}, {:?})",
            w.m, w.k, w.n, w.nnz_a, w.nnz_b, w.dtype
        );
        let _ = writeln!(
            out,
            "  densities  : A {:.4}%  B {:.4}%",
            w.density_a() * 100.0,
            w.density_b() * 100.0
        );
        let _ = writeln!(
            out,
            "  choice     : {}  [{}]  fp 0x{:016x}",
            e.choice,
            if self.from_cache {
                "plan-cache hit"
            } else {
                "searched"
            },
            self.choice_fingerprint()
        );
        let _ = writeln!(out, "  dataflow   : {}", self.dataflow);
        let _ = writeln!(
            out,
            "  tiles      : {} column tile(s), policy {} ({} stored nnz, widest {})",
            self.schedule.len(),
            self.schedule.policy,
            self.schedule.total_nnz(),
            self.schedule.max_width()
        );
        let _ = writeln!(
            out,
            "  budget     : dram {:.0}cy + conv {:.0}cy + compute {:.0}cy = {:.0}cy, \
             {:.3e} J, utilization {:.1}%",
            e.dram_cycles,
            e.conv_cycles,
            e.compute_cycles,
            e.total_cycles(),
            e.total_energy(),
            e.utilization * 100.0
        );
        let s = &self.predicted.schedule;
        let _ = writeln!(
            out,
            "  overlap    : predicted {} overlapped vs {} serial ({:.3}x, {} hidden) \
             + {}cy A-conversion prologue  [{} model]",
            s.overlapped_cycles,
            s.serial_cycles,
            s.speedup(),
            s.hidden_cycles(),
            self.predicted.conv_a_cycles,
            self.predicted.cost_model
        );
        let _ = writeln!(
            out,
            "  calibration: generation {}{}",
            self.calibration_generation,
            if self.calibration_generation == 0 {
                " (uncalibrated analytic model)"
            } else {
                ""
            }
        );
        out
    }
}

/// Predicted vs measured cycles for one executed stationary tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileCompare {
    /// First stationary column of the tile.
    pub col_start: usize,
    /// One past the last stationary column of the tile.
    pub col_end: usize,
    /// Planner-predicted MINT conversion cycles.
    pub predicted_conv_cycles: u64,
    /// Measured MINT conversion cycles (pipelined wall clock).
    pub measured_conv_cycles: u64,
    /// Planner-predicted accelerator compute cycles.
    pub predicted_compute_cycles: u64,
    /// Measured accelerator compute cycles.
    pub measured_compute_cycles: u64,
}

/// The validation record every executed plan yields: the plan's
/// prediction lanes against what `accel::exec` actually measured.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanTrace {
    /// Cost model the prediction side came from.
    pub cost_model: CostModel,
    /// Per-tile comparison, in execution order.
    pub tiles: Vec<TileCompare>,
    /// The predicted double-buffered schedule (from the plan).
    pub predicted_schedule: OverlapSchedule,
    /// The measured double-buffered schedule (from execution).
    pub measured_schedule: OverlapSchedule,
}

impl PlanTrace {
    /// Predicted compute cycles summed over all tiles.
    pub fn predicted_compute_cycles(&self) -> u64 {
        self.tiles.iter().map(|t| t.predicted_compute_cycles).sum()
    }

    /// Measured compute cycles summed over all tiles.
    pub fn measured_compute_cycles(&self) -> u64 {
        self.tiles.iter().map(|t| t.measured_compute_cycles).sum()
    }

    /// Predicted stationary-conversion cycles summed over all tiles.
    pub fn predicted_conversion_cycles(&self) -> u64 {
        self.tiles.iter().map(|t| t.predicted_conv_cycles).sum()
    }

    /// Measured stationary-conversion cycles summed over all tiles.
    pub fn measured_conversion_cycles(&self) -> u64 {
        self.tiles.iter().map(|t| t.measured_conv_cycles).sum()
    }

    /// True when every tile's predicted compute cycles equal the
    /// measured ones exactly (the [`CostModel::Structure`] guarantee).
    pub fn compute_exact(&self) -> bool {
        self.tiles
            .iter()
            .all(|t| t.predicted_compute_cycles == t.measured_compute_cycles)
    }

    /// Mean per-tile relative cycle error: the average over tiles of
    /// `|predicted − measured| / max(measured, 1)`, with conversion and
    /// compute lanes summed per tile (0.0 for a perfect prediction or
    /// an empty trace). The scalar the calibration loop drives down.
    pub fn mean_cycle_error(&self) -> f64 {
        if self.tiles.is_empty() {
            return 0.0;
        }
        let sum: f64 = self
            .tiles
            .iter()
            .map(|t| {
                let p = (t.predicted_conv_cycles + t.predicted_compute_cycles) as f64;
                let m = (t.measured_conv_cycles + t.measured_compute_cycles) as f64;
                (p - m).abs() / m.max(1.0)
            })
            .sum();
        sum / self.tiles.len() as f64
    }

    /// Multiplicative total-compute error: `max(p, m) / min(p, m)` over
    /// the summed compute cycles (1.0 for a perfect prediction; also 1.0
    /// when both sides are zero, e.g. empty operands).
    pub fn compute_error_factor(&self) -> f64 {
        let p = self.predicted_compute_cycles() as f64;
        let m = self.measured_compute_cycles() as f64;
        if p == 0.0 && m == 0.0 {
            return 1.0;
        }
        if p == 0.0 || m == 0.0 {
            return f64::INFINITY;
        }
        (p / m).max(m / p)
    }
}

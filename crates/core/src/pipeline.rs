//! The tile-grained pipelined runtime: plan → convert → execute with
//! double-buffering, plus the batched serving front-end.
//!
//! [`FlexSystem::run_functional`] converts a whole operand and only then
//! computes — the overlap the paper's Fig. 12 prices never happens, and
//! operands are bounded by one scratchpad residency. This module replaces
//! that one-shot call with a **stage machine** over column tiles of the
//! stationary operand:
//!
//! ```text
//!            ┌────────┐   tiles    ┌─────────┐  ACF tile  ┌─────────┐
//!  workload →│  PLAN  │──────────→ │ CONVERT │──────────→ │ EXECUTE │→ O
//!            │ (SAGE) │  (tiler)   │ (MINT)  │ ping/pong  │  (accel)│
//!            └────────┘            └─────────┘  buffers   └─────────┘
//!                       tile t+1 converts while tile t computes
//! ```
//!
//! The stationary operand is cut into scratchpad-sized column tiles by
//! `sparseflex_formats::tiler` (every format tiles through its fiber
//! stream — no densification), each tile is converted MCF→ACF through the
//! metered MINT engine, and the cycle-accurate simulator executes it
//! while — in the modeled schedule — the converter prepares the next
//! tile in the other staging buffer. [`PipelineRun`] reports both the
//! overlapped and the serial (convert-then-compute) cycle totals, so the
//! paper's "conversion is cheap because it overlaps" claim is measured
//! end-to-end rather than assumed.
//!
//! Tiling also lifts the residency limit: a stationary operand whose
//! compressed rows overflow a PE buffer (the recoverable
//! [`RunError::StationaryTooLarge`]) is split until every stationary unit
//! fits, so workloads the monolithic path rejects run here.
//!
//! On top of the pipeline, [`FlexSystem::run_batch`] serves many
//! independent workloads across parallel *virtual accelerator instances*
//! (one scoped worker thread each) with a shared SAGE [`PlanCache`], so
//! repeated workload shapes skip the MCF×ACF search entirely.

use crate::system::{FlexSystem, RunError};
use sparseflex_accel::exec::{
    simulate_spgemm, simulate_ws, ActivityCounts, CycleBreakdown, SimResult,
};
use sparseflex_formats::tiler::{bounded_column_ranges, tile_column_ranges, uniform_column_ranges};
use sparseflex_formats::{
    csr_cow, CooMatrix, CsrMatrix, DenseMatrix, MatrixData, MatrixFormat, SparseMatrix,
};
use sparseflex_kernels::parallel::{par_chunks, worker_count};
use sparseflex_mint::tiled::{overlap_schedule, OverlapSchedule};
use sparseflex_mint::ConversionReport;
use sparseflex_sage::{Evaluation, SageKernel, SageWorkload};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Per-tile record of the convert and execute stages.
#[derive(Debug, Clone)]
pub struct TileTrace {
    /// First stationary column of the tile.
    pub col_start: usize,
    /// One past the last stationary column of the tile.
    pub col_end: usize,
    /// MINT report for converting this tile MCF→ACF.
    pub conv: ConversionReport,
    /// Accelerator cycle breakdown for executing this tile.
    pub compute: CycleBreakdown,
    /// Accelerator activity counters for this tile.
    pub counts: ActivityCounts,
}

/// Result of a tile-grained pipelined run.
#[derive(Debug, Clone)]
pub struct PipelineRun {
    /// The evaluation (SAGE-planned or caller-pinned) the run executed.
    pub evaluation: Evaluation,
    /// The full output matrix, stitched from the per-tile outputs.
    pub output: DenseMatrix,
    /// Conversion report for the streaming operand A (converted once, in
    /// the pipeline prologue).
    pub conv_a: ConversionReport,
    /// One trace per stationary column tile, in execution order.
    pub tiles: Vec<TileTrace>,
    /// The double-buffered vs serial cycle totals over the tile stream.
    pub schedule: OverlapSchedule,
    /// Whether the plan came from a [`PlanCache`] hit (always `false`
    /// outside [`FlexSystem::run_batch`]).
    pub plan_cached: bool,
}

impl PipelineRun {
    /// Wall-clock cycles with conversion overlapped behind compute
    /// (prologue A conversion + the double-buffered tile schedule).
    pub fn overlapped_cycles(&self) -> u64 {
        self.conv_a.pipelined_cycles() + self.schedule.overlapped_cycles
    }

    /// Wall-clock cycles of the serial convert-then-compute discipline —
    /// what the monolithic [`FlexSystem::run_functional`] models.
    pub fn serial_cycles(&self) -> u64 {
        self.conv_a.pipelined_cycles() + self.schedule.serial_cycles
    }

    /// Total accelerator compute cycles across all tiles.
    pub fn compute_cycles(&self) -> u64 {
        self.tiles.iter().map(|t| t.compute.total()).sum()
    }

    /// Total MINT conversion cycles (A prologue + every B tile).
    pub fn conversion_cycles(&self) -> u64 {
        self.conv_a.pipelined_cycles()
            + self
                .tiles
                .iter()
                .map(|t| t.conv.pipelined_cycles())
                .sum::<u64>()
    }
}

/// Key identifying a workload shape for plan reuse: kernel, dimensions,
/// nonzero counts and datatype — exactly the statistics SAGE's models
/// consume, so equal keys provably yield equal plans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct PlanKey {
    kernel: SageKernel,
    m: usize,
    k: usize,
    n: usize,
    nnz_a: u64,
    nnz_b: u64,
    dtype: sparseflex_formats::DataType,
}

impl From<&SageWorkload> for PlanKey {
    fn from(w: &SageWorkload) -> Self {
        PlanKey {
            kernel: w.kernel,
            m: w.m,
            k: w.k,
            n: w.n,
            nnz_a: w.nnz_a,
            nnz_b: w.nnz_b,
            dtype: w.dtype,
        }
    }
}

/// Thread-safe cache of SAGE plans keyed by workload statistics.
///
/// The MCF×ACF search is the most expensive part of serving a small
/// workload; batches with repeated shapes (the common serving pattern —
/// e.g. the same pruned layer across requests) pay it once.
#[derive(Debug, Default)]
pub struct PlanCache {
    plans: Mutex<HashMap<PlanKey, Evaluation>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl PlanCache {
    /// Fetch the plan for `w`, running the SAGE search only on a miss.
    /// Returns the evaluation and whether it was served from cache.
    pub fn plan(&self, system: &FlexSystem, w: &SageWorkload) -> (Evaluation, bool) {
        let key = PlanKey::from(w);
        if let Some(hit) = self.plans.lock().expect("plan cache poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (hit.clone(), true);
        }
        let eval = system.plan(w).evaluation;
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.plans
            .lock()
            .expect("plan cache poisoned")
            .insert(key, eval.clone());
        (eval, false)
    }

    /// Searches skipped thanks to the cache.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Full SAGE searches performed.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Distinct workload shapes cached.
    pub fn len(&self) -> usize {
        self.plans.lock().expect("plan cache poisoned").len()
    }

    /// True when no plan has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One independent workload in a batch: operands plus the statistics
/// SAGE plans from.
#[derive(Debug, Clone)]
pub struct BatchJob {
    /// Streaming operand.
    pub a: CooMatrix,
    /// Stationary operand.
    pub b: CooMatrix,
    /// Workload statistics (the plan-cache key).
    pub workload: SageWorkload,
}

impl BatchJob {
    /// Build a job, deriving the SpGEMM workload statistics from the
    /// operands themselves.
    pub fn spgemm(a: CooMatrix, b: CooMatrix, dtype: sparseflex_formats::DataType) -> Self {
        let workload = SageWorkload::spgemm(
            a.rows(),
            a.cols(),
            b.cols(),
            a.nnz() as u64,
            b.nnz() as u64,
            dtype,
        );
        BatchJob { a, b, workload }
    }
}

/// Result of serving one batch through the pipelined runtime.
#[derive(Debug)]
pub struct BatchRun {
    /// Per-job outcomes, in submission order.
    pub results: Vec<Result<PipelineRun, RunError>>,
    /// SAGE searches skipped via the plan cache.
    pub plan_cache_hits: usize,
    /// SAGE searches actually performed.
    pub plans_computed: usize,
    /// Virtual accelerator instances (worker threads) used.
    pub workers: usize,
}

impl BatchRun {
    /// Jobs that completed successfully.
    pub fn succeeded(&self) -> usize {
        self.results.iter().filter(|r| r.is_ok()).count()
    }

    /// Sum of overlapped cycles across successful jobs (the batch's
    /// modeled service time on one instance; divide by `workers` for the
    /// parallel estimate).
    pub fn total_overlapped_cycles(&self) -> u64 {
        self.results
            .iter()
            .filter_map(|r| r.as_ref().ok())
            .map(PipelineRun::overlapped_cycles)
            .sum()
    }
}

impl FlexSystem {
    /// Tile-grained pipelined run: SAGE plans, the stationary operand is
    /// tiled, and MINT converts tile *t+1* while the array computes tile
    /// *t*. See the [module docs](self) for the stage machine.
    pub fn run_pipelined(
        &self,
        a: &CooMatrix,
        b: &CooMatrix,
        w: &SageWorkload,
    ) -> Result<PipelineRun, RunError> {
        let evaluation = self.plan(w).evaluation;
        self.run_pipelined_with_evaluation(a, b, evaluation, false)
    }

    /// [`run_pipelined`](Self::run_pipelined) with the format choice
    /// pinned by the caller (used by the property suite to exercise every
    /// MCF×ACF pair, and by [`run_batch`](Self::run_batch) with cached
    /// plans).
    pub fn run_pipelined_with_evaluation(
        &self,
        a: &CooMatrix,
        b: &CooMatrix,
        evaluation: Evaluation,
        plan_cached: bool,
    ) -> Result<PipelineRun, RunError> {
        if a.cols() != b.rows() {
            return Err(RunError::ShapeMismatch {
                a_cols: a.cols(),
                b_rows: b.rows(),
            });
        }
        let choice = &evaluation.choice;
        let engine = &self.sage.mint;
        let accel = &self.sage.accel;
        let spgemm = choice.acf_a == MatrixFormat::Csr && choice.acf_b == MatrixFormat::Csr;

        // ---- PLAN (operand side): store in MCF, cut the stationary
        // operand into scratchpad-sized column tiles.
        let a_mem = MatrixData::encode(a, &choice.mcf_a)?;
        let b_mem = MatrixData::encode(b, &choice.mcf_b)?;
        let residency = accel.num_pes.max(1);
        let ranges = if spgemm {
            // Gustavson PEs buffer whole compressed row segments (2 slots
            // per entry): bound per-row entries per tile so no stationary
            // unit can overflow a buffer.
            let max_row_entries = accel.pe_buffer_elems / 2;
            bounded_column_ranges(&b_mem, max_row_entries, residency).ok_or(
                RunError::StationaryTooLarge {
                    needed: 2,
                    available: accel.pe_buffer_elems,
                },
            )?
        } else {
            // WS tiles are one array residency wide (`num_pes` stationary
            // columns); the simulator splits K internally.
            uniform_column_ranges(b_mem.cols(), residency)
        };
        let tiles_mem = tile_column_ranges(&b_mem, &ranges)?;

        // ---- Prologue: convert the streaming operand once.
        let (a_acf, conv_a) = engine.convert_matrix(&a_mem, &choice.acf_a)?;
        let a_csr = if spgemm { Some(csr_cow(&a_acf)) } else { None };

        // ---- CONVERT ∥ EXECUTE: the double-buffered stage machine. Two
        // staging slots ping-pong: while the array executes the tile in
        // slot `t % 2`, MINT fills slot `(t+1) % 2` with the next tile.
        let mut slots: [Option<(MatrixData, ConversionReport)>; 2] = [None, None];
        if let Some(first) = tiles_mem.first() {
            // Pipeline fill: tile 0 converts with no compute to hide it.
            slots[0] = Some(engine.convert_matrix(&first.data, &choice.acf_b)?);
        }
        let mut output = DenseMatrix::zeros(a.rows(), b_mem.cols());
        let mut tiles = Vec::with_capacity(tiles_mem.len());
        for (t, tile) in tiles_mem.iter().enumerate() {
            let (tile_acf, conv) = slots[t % 2]
                .take()
                .expect("the stage machine keeps the current slot filled");
            // Converter stage: prepare tile t+1 while tile t executes.
            if let Some(next) = tiles_mem.get(t + 1) {
                slots[(t + 1) % 2] = Some(engine.convert_matrix(&next.data, &choice.acf_b)?);
            }
            // Execute stage.
            let sim = self.execute_tile(&a_acf, a_csr.as_deref(), &tile_acf, spgemm)?;
            stitch_columns(&mut output, &sim.output, tile.col_start);
            tiles.push(TileTrace {
                col_start: tile.col_start,
                col_end: tile.col_end,
                conv,
                compute: sim.cycles,
                counts: sim.counts,
            });
        }

        let conv_cycles: Vec<u64> = tiles.iter().map(|t| t.conv.pipelined_cycles()).collect();
        let compute_cycles: Vec<u64> = tiles.iter().map(|t| t.compute.total()).collect();
        let schedule = overlap_schedule(&conv_cycles, &compute_cycles);
        Ok(PipelineRun {
            evaluation,
            output,
            conv_a,
            tiles,
            schedule,
            plan_cached,
        })
    }

    fn execute_tile(
        &self,
        a_acf: &MatrixData,
        a_csr: Option<&CsrMatrix>,
        tile_acf: &MatrixData,
        spgemm: bool,
    ) -> Result<SimResult, RunError> {
        let sim = if spgemm {
            let a = a_csr.expect("CSR A is materialized for SpGEMM runs");
            simulate_spgemm(a, &csr_cow(tile_acf), &self.sage.accel)?
        } else {
            simulate_ws(a_acf, tile_acf, &self.sage.accel)?
        };
        Ok(sim)
    }

    /// Serve a batch of independent workloads across parallel virtual
    /// accelerator instances, sharing one SAGE [`PlanCache`].
    ///
    /// Jobs are partitioned into contiguous chunks, one scoped worker
    /// thread per chunk (each thread simulates its own accelerator
    /// instance); results come back in submission order. Repeated
    /// workload shapes hit the plan cache and skip the MCF×ACF search.
    pub fn run_batch(&self, jobs: &[BatchJob]) -> BatchRun {
        let cache = PlanCache::default();
        self.run_batch_with_cache(jobs, &cache)
    }

    /// [`run_batch`](Self::run_batch) against a caller-owned cache, so
    /// plan reuse extends across batches of a long-lived service.
    pub fn run_batch_with_cache(&self, jobs: &[BatchJob], cache: &PlanCache) -> BatchRun {
        let workers = worker_count(jobs.len());
        let mut results: Vec<Option<Result<PipelineRun, RunError>>> =
            (0..jobs.len()).map(|_| None).collect();
        par_chunks(&mut results, workers, |offset, chunk| {
            for (i, slot) in chunk.iter_mut().enumerate() {
                let job = &jobs[offset + i];
                let (evaluation, cached) = cache.plan(self, &job.workload);
                *slot =
                    Some(self.run_pipelined_with_evaluation(&job.a, &job.b, evaluation, cached));
            }
        });
        BatchRun {
            results: results
                .into_iter()
                .map(|r| r.expect("every job slot is filled by its worker"))
                .collect(),
            plan_cache_hits: cache.hits(),
            plans_computed: cache.misses(),
            workers,
        }
    }
}

/// Copy a tile's `m x width` output into the full output at column
/// `col_start` (tiles cover disjoint column ranges).
fn stitch_columns(output: &mut DenseMatrix, tile_out: &DenseMatrix, col_start: usize) {
    for r in 0..tile_out.rows() {
        let row = tile_out.row(r);
        for (j, &v) in row.iter().enumerate() {
            if v != 0.0 {
                output.set(r, col_start + j, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparseflex_formats::DataType;
    use sparseflex_kernels::gemm::gemm_naive;
    use sparseflex_sage::FormatChoice;
    use sparseflex_workloads::synth::random_matrix;

    fn small_system() -> FlexSystem {
        let mut sys = FlexSystem::default();
        sys.sage.accel.num_pes = 8;
        sys.sage.accel.pe_buffer_elems = 64;
        sys
    }

    fn spgemm_workload(a: &CooMatrix, b: &CooMatrix) -> SageWorkload {
        SageWorkload::spgemm(
            a.rows(),
            a.cols(),
            b.cols(),
            a.nnz() as u64,
            b.nnz() as u64,
            DataType::Fp32,
        )
    }

    fn pinned_eval(sys: &FlexSystem, w: &SageWorkload, choice: FormatChoice) -> Evaluation {
        sys.sage
            .evaluate(w, &choice, sparseflex_sage::eval::ConversionMode::Hardware)
            .expect("pinned choice evaluates")
    }

    #[test]
    fn pipelined_output_matches_monolithic_run() {
        let sys = small_system();
        let a = random_matrix(24, 32, 90, 1);
        let b = random_matrix(32, 40, 120, 2);
        let w = spgemm_workload(&a, &b);
        let mono = sys.run_functional(&a, &b, &w).unwrap();
        let piped = sys.run_pipelined(&a, &b, &w).unwrap();
        assert_eq!(piped.output, mono.sim.output, "tiling changed the product");
        assert!(piped.tiles.len() > 1, "operand should span several tiles");
    }

    #[test]
    fn oversized_stationary_rows_recover_through_the_pipeline() {
        // One B row holds 16 entries; 8-slot PE buffers (4 pairs) cannot
        // hold it, so the monolithic SpGEMM path fails with the typed,
        // recoverable error — and the tiler splits it until it fits.
        let mut sys = FlexSystem::default();
        sys.sage.accel.num_pes = 4;
        sys.sage.accel.pe_buffer_elems = 8;
        let b = CooMatrix::from_triplets(4, 16, (0..16).map(|j| (0, j, (j + 1) as f64)).collect())
            .unwrap();
        let a =
            CooMatrix::from_triplets(3, 4, vec![(0, 0, 1.0), (1, 0, 2.0), (2, 3, 3.0)]).unwrap();
        let w = spgemm_workload(&a, &b);
        let choice = FormatChoice {
            mcf_a: MatrixFormat::Csr,
            mcf_b: MatrixFormat::Csr,
            acf_a: MatrixFormat::Csr,
            acf_b: MatrixFormat::Csr,
        };
        let eval = pinned_eval(&sys, &w, choice);

        let mono = sys.run_with_choice(&a, &b, eval.clone());
        match mono {
            Err(ref e @ RunError::StationaryTooLarge { needed, available }) => {
                assert_eq!(needed, 32);
                assert_eq!(available, 8);
                assert!(e.is_recoverable());
            }
            other => panic!("expected StationaryTooLarge, got {other:?}"),
        }

        let piped = sys
            .run_pipelined_with_evaluation(&a, &b, eval, false)
            .expect("the tiler renders the rejection unreachable");
        let expect = gemm_naive(&a.clone().into_dense(), &b.clone().into_dense());
        assert!(piped.output.approx_eq(&expect, 1e-9));
        // Every tile's stationary rows now fit 4 pairs.
        assert!(piped.tiles.iter().all(|t| t.col_end - t.col_start <= 4));
    }

    #[test]
    fn overlap_beats_serial_when_conversion_is_nontrivial() {
        // Fig. 12-class shape: compressed MCF != ACF so every tile pays a
        // real conversion, spread over many tiles.
        let sys = small_system();
        let a = random_matrix(40, 48, 300, 5);
        let b = random_matrix(48, 64, 900, 6);
        let w = spgemm_workload(&a, &b);
        let choice = FormatChoice {
            mcf_a: MatrixFormat::Csr,
            mcf_b: MatrixFormat::Csr,
            acf_a: MatrixFormat::Csr,
            acf_b: MatrixFormat::Csc,
        };
        let eval = pinned_eval(&sys, &w, choice);
        let run = sys
            .run_pipelined_with_evaluation(&a, &b, eval, false)
            .unwrap();
        assert!(run.tiles.len() >= 2);
        assert!(
            run.overlapped_cycles() < run.serial_cycles(),
            "overlap {} !< serial {}",
            run.overlapped_cycles(),
            run.serial_cycles()
        );
        let expect = gemm_naive(&a.clone().into_dense(), &b.clone().into_dense());
        assert!(run.output.approx_eq(&expect, 1e-9));
    }

    #[test]
    fn batch_serves_jobs_and_caches_plans() {
        let sys = small_system();
        let mut jobs = Vec::new();
        // 6 jobs over 2 distinct shapes -> at most 2 searches... but the
        // racing workers may each miss once; at least half must hit.
        for i in 0..3u64 {
            jobs.push(BatchJob::spgemm(
                random_matrix(16, 20, 60, 10 + i),
                random_matrix(20, 24, 80, 20 + i),
                DataType::Fp32,
            ));
            jobs.push(BatchJob::spgemm(
                random_matrix(12, 16, 40, 30 + i),
                random_matrix(16, 18, 50, 40 + i),
                DataType::Fp32,
            ));
        }
        let cache = PlanCache::default();
        let batch = sys.run_batch_with_cache(&jobs, &cache);
        assert_eq!(batch.results.len(), 6);
        assert_eq!(batch.succeeded(), 6);
        assert!(batch.workers >= 1);
        assert_eq!(cache.len(), 2, "two distinct shapes");
        assert!(
            batch.plan_cache_hits + batch.plans_computed == 6,
            "every job either hits or computes"
        );
        assert!(batch.plan_cache_hits >= 2, "repeated shapes must hit");
        // Every job's output is correct.
        for (job, res) in jobs.iter().zip(&batch.results) {
            let run = res.as_ref().unwrap();
            let expect = gemm_naive(&job.a.clone().into_dense(), &job.b.clone().into_dense());
            assert!(run.output.approx_eq(&expect, 1e-9));
        }
        assert!(batch.total_overlapped_cycles() > 0);
    }

    #[test]
    fn sub_pair_buffers_are_unrecoverable() {
        // A 1-slot PE buffer cannot hold even one compressed pair; no
        // tiling fixes that, so the pipeline fails with the same typed
        // error flagged *unrecoverable* (no retry loop).
        let mut sys = FlexSystem::default();
        sys.sage.accel.num_pes = 4;
        sys.sage.accel.pe_buffer_elems = 1;
        let a = random_matrix(4, 6, 8, 1);
        let b = random_matrix(6, 8, 12, 2);
        let w = spgemm_workload(&a, &b);
        let choice = FormatChoice {
            mcf_a: MatrixFormat::Csr,
            mcf_b: MatrixFormat::Csr,
            acf_a: MatrixFormat::Csr,
            acf_b: MatrixFormat::Csr,
        };
        let eval = pinned_eval(&sys, &w, choice);
        match sys.run_pipelined_with_evaluation(&a, &b, eval, false) {
            Err(e @ RunError::StationaryTooLarge { .. }) => {
                assert!(!e.is_recoverable(), "no tiling can fix a 1-slot buffer")
            }
            other => panic!("expected unrecoverable StationaryTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn shape_mismatch_is_typed() {
        let sys = small_system();
        let a = random_matrix(4, 5, 6, 1);
        let b = random_matrix(7, 3, 6, 2);
        let w = SageWorkload::spgemm(4, 5, 3, 6, 6, DataType::Fp32);
        assert!(matches!(
            sys.run_pipelined(&a, &b, &w),
            Err(RunError::ShapeMismatch {
                a_cols: 5,
                b_rows: 7
            })
        ));
    }
}

//! The pipelined and batched front-ends over the planner layer.
//!
//! [`FlexSystem::run_pipelined`] plans a tile-grained job
//! ([`Planner::plan_job`] with [`PlanDiscipline::Pipelined`]) and hands
//! the [`ExecutionPlan`] to the shared
//! executor ([`Planner::execute_plan`]): the stationary operand is cut
//! into scratchpad-sized column tiles and MINT converts tile *t+1* while
//! the array computes tile *t* (double-buffered). [`PipelineRun`]
//! reports both the overlapped and serial cycle totals, so the paper's
//! "conversion is cheap because it overlaps" claim is measured
//! end-to-end rather than assumed — and carries the
//! [`PlanTrace`](crate::plan::PlanTrace) comparing the plan's predicted
//! cycles against what the simulator measured.
//!
//! Tiling also lifts the residency limit: a stationary operand whose
//! compressed rows overflow a PE buffer (the recoverable
//! [`RunError::StationaryTooLarge`]) is split until every stationary
//! unit fits, so workloads the monolithic path rejects run here.
//!
//! On top of the pipeline, [`FlexSystem::run_batch`] serves many
//! independent workloads across parallel *virtual accelerator instances*
//! (one scoped worker thread each), sharing the system's own
//! [`Planner`] — and therefore its bounded plan cache — across jobs,
//! threads **and successive batch calls**, so a long-lived service pays
//! each workload shape's MCF×ACF search once.

use crate::plan::ExecutionPlan;
use crate::planner::{PlanDiscipline, Planner};
use crate::system::{FlexSystem, RunError};
use sparseflex_accel::exec::{ActivityCounts, CycleBreakdown};
use sparseflex_formats::{CooMatrix, DenseMatrix, SparseMatrix};
use sparseflex_kernels::parallel::{par_chunks, worker_count};
use sparseflex_mint::tiled::OverlapSchedule;
use sparseflex_mint::ConversionReport;
use sparseflex_sage::{Evaluation, SageWorkload};

/// Per-tile record of the convert and execute stages.
#[derive(Debug, Clone)]
pub struct TileTrace {
    /// First stationary column of the tile.
    pub col_start: usize,
    /// One past the last stationary column of the tile.
    pub col_end: usize,
    /// MINT report for converting this tile MCF→ACF.
    pub conv: ConversionReport,
    /// Accelerator cycle breakdown for executing this tile.
    pub compute: CycleBreakdown,
    /// Accelerator activity counters for this tile.
    pub counts: ActivityCounts,
    /// Column tiles the WS array split this tile into internally.
    pub array_col_tiles: usize,
    /// K-range passes the simulator made across those internal tiles.
    pub k_passes: usize,
}

/// Result of executing one [`ExecutionPlan`] (tile-grained or
/// monolithic — a monolithic run is simply a one-tile plan).
#[derive(Debug, Clone)]
pub struct PipelineRun {
    /// The executed plan: format choice, tile schedule, predicted
    /// budget, and whether the evaluation came from the plan cache.
    pub plan: ExecutionPlan,
    /// The full output matrix, stitched from the per-tile outputs.
    pub output: DenseMatrix,
    /// Conversion report for the streaming operand A (converted once, in
    /// the pipeline prologue).
    pub conv_a: ConversionReport,
    /// One trace per stationary column tile, in execution order.
    pub tiles: Vec<TileTrace>,
    /// Predicted vs measured cycles, tile by tile (the measured
    /// double-buffered schedule lives in `trace.measured_schedule`).
    pub trace: crate::plan::PlanTrace,
}

impl PipelineRun {
    /// The evaluation the run executed (SAGE-planned or caller-pinned).
    pub fn evaluation(&self) -> &Evaluation {
        &self.plan.evaluation
    }

    /// Whether the plan's evaluation was served from the plan cache.
    pub fn plan_cached(&self) -> bool {
        self.plan.from_cache
    }

    /// The measured double-buffered vs serial cycle totals over the
    /// tile stream.
    pub fn schedule(&self) -> OverlapSchedule {
        self.trace.measured_schedule
    }

    /// Wall-clock cycles with conversion overlapped behind compute
    /// (prologue A conversion + the double-buffered tile schedule).
    pub fn overlapped_cycles(&self) -> u64 {
        self.conv_a.pipelined_cycles() + self.schedule().overlapped_cycles
    }

    /// Wall-clock cycles of the serial convert-then-compute discipline —
    /// what the monolithic [`FlexSystem::run_functional`] models.
    pub fn serial_cycles(&self) -> u64 {
        self.conv_a.pipelined_cycles() + self.schedule().serial_cycles
    }

    /// Total accelerator compute cycles across all tiles.
    pub fn compute_cycles(&self) -> u64 {
        self.tiles.iter().map(|t| t.compute.total()).sum()
    }

    /// Total MINT conversion cycles (A prologue + every B tile).
    pub fn conversion_cycles(&self) -> u64 {
        self.conv_a.pipelined_cycles()
            + self
                .tiles
                .iter()
                .map(|t| t.conv.pipelined_cycles())
                .sum::<u64>()
    }
}

/// One independent workload in a batch: operands plus the statistics
/// SAGE plans from.
#[derive(Debug, Clone)]
pub struct BatchJob {
    /// Streaming operand.
    pub a: CooMatrix,
    /// Stationary operand.
    pub b: CooMatrix,
    /// Workload statistics (the plan-cache key).
    pub workload: SageWorkload,
}

impl BatchJob {
    /// Build a job, deriving the SpGEMM workload statistics from the
    /// operands themselves.
    pub fn spgemm(a: CooMatrix, b: CooMatrix, dtype: sparseflex_formats::DataType) -> Self {
        let workload = SageWorkload::spgemm(
            a.rows(),
            a.cols(),
            b.cols(),
            a.nnz() as u64,
            b.nnz() as u64,
            dtype,
        );
        BatchJob { a, b, workload }
    }
}

/// Result of serving one batch through the pipelined runtime.
#[derive(Debug)]
pub struct BatchRun {
    /// Per-job outcomes, in submission order.
    pub results: Vec<Result<PipelineRun, RunError>>,
    /// SAGE searches skipped via the plan cache **during this batch**.
    pub plan_cache_hits: u64,
    /// SAGE searches actually performed during this batch.
    pub plans_computed: u64,
    /// Plan-cache entries evicted (LRU) during this batch.
    pub plan_cache_evictions: u64,
    /// Virtual accelerator instances (worker threads) used.
    pub workers: usize,
}

impl BatchRun {
    /// Jobs that completed successfully.
    pub fn succeeded(&self) -> usize {
        self.results.iter().filter(|r| r.is_ok()).count()
    }

    /// Sum of overlapped cycles across successful jobs (the batch's
    /// modeled service time on one instance; divide by `workers` for the
    /// parallel estimate).
    pub fn total_overlapped_cycles(&self) -> u64 {
        self.results
            .iter()
            .filter_map(|r| r.as_ref().ok())
            .map(PipelineRun::overlapped_cycles)
            .sum()
    }
}

impl FlexSystem {
    /// Tile-grained pipelined run: the planner produces an
    /// [`ExecutionPlan`] (cache-aware SAGE evaluation + column-tile
    /// schedule + cycle prediction) and the shared executor runs it with
    /// MINT converting tile *t+1* while the array computes tile *t*.
    pub fn run_pipelined(
        &self,
        a: &CooMatrix,
        b: &CooMatrix,
        w: &SageWorkload,
    ) -> Result<PipelineRun, RunError> {
        let plan = self
            .planner
            .plan_job(&self.sage, a, b, w, PlanDiscipline::Pipelined)?;
        self.planner.execute_plan(&self.sage, &plan, a, b)
    }

    /// [`run_pipelined`](Self::run_pipelined) with the format choice
    /// pinned by the caller (used by the property suite to exercise every
    /// MCF×ACF pair); `plan_cached` is carried into the plan so batch
    /// callers can report cache provenance.
    pub fn run_pipelined_with_evaluation(
        &self,
        a: &CooMatrix,
        b: &CooMatrix,
        evaluation: Evaluation,
        plan_cached: bool,
    ) -> Result<PipelineRun, RunError> {
        let w = Planner::derive_workload(&self.sage, a, b, &evaluation.choice);
        let mut plan =
            self.planner
                .plan_pinned(&self.sage, a, b, w, evaluation, PlanDiscipline::Pipelined)?;
        plan.from_cache = plan_cached;
        self.planner.execute_plan(&self.sage, &plan, a, b)
    }

    /// Serve a batch of independent workloads across parallel virtual
    /// accelerator instances, sharing the system's own [`Planner`].
    ///
    /// Jobs are partitioned into contiguous chunks, one scoped worker
    /// thread per chunk (each thread simulates its own accelerator
    /// instance); results come back in submission order. Repeated
    /// workload shapes hit the bounded plan cache and skip the MCF×ACF
    /// search — **including shapes cached by earlier `run_batch` calls**
    /// on the same system, since the planner (and its cache) persists.
    pub fn run_batch(&self, jobs: &[BatchJob]) -> BatchRun {
        self.run_batch_with_planner(jobs, &self.planner)
    }

    /// [`run_batch`](Self::run_batch) against a caller-owned planner, so
    /// several systems can share one plan cache (or a bench can isolate
    /// a cold cache).
    pub fn run_batch_with_planner(&self, jobs: &[BatchJob], planner: &Planner) -> BatchRun {
        let before = planner.cache.counters();
        let workers = worker_count(jobs.len());
        // Hit/miss counts are tallied from this batch's own plans (the
        // `from_cache` bit), not from global cache-counter deltas, so
        // concurrent batches sharing one planner never misattribute each
        // other's searches: every job either hits or computes, exactly.
        let hits = std::sync::atomic::AtomicU64::new(0);
        let misses = std::sync::atomic::AtomicU64::new(0);
        let mut results: Vec<Option<Result<PipelineRun, RunError>>> =
            (0..jobs.len()).map(|_| None).collect();
        par_chunks(&mut results, workers, |offset, chunk| {
            for (i, slot) in chunk.iter_mut().enumerate() {
                let job = &jobs[offset + i];
                *slot = Some(
                    planner
                        .plan_job(
                            &self.sage,
                            &job.a,
                            &job.b,
                            &job.workload,
                            PlanDiscipline::Pipelined,
                        )
                        .and_then(|plan| {
                            let counter = if plan.from_cache { &hits } else { &misses };
                            counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            planner.execute_plan(&self.sage, &plan, &job.a, &job.b)
                        }),
                );
            }
        });
        // Evictions cannot be pinned to a single job; the global delta is
        // exact for the common one-batch-at-a-time serving pattern.
        let delta = planner.cache.counters().since(before);
        BatchRun {
            results: results
                .into_iter()
                .map(|r| r.expect("every job slot is filled by its worker"))
                .collect(),
            plan_cache_hits: hits.into_inner(),
            plans_computed: misses.into_inner(),
            plan_cache_evictions: delta.evictions,
            workers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparseflex_formats::{DataType, MatrixFormat};
    use sparseflex_kernels::gemm::gemm_naive;
    use sparseflex_sage::FormatChoice;
    use sparseflex_workloads::synth::random_matrix;

    fn small_system() -> FlexSystem {
        let mut sys = FlexSystem::default();
        sys.sage.accel.num_pes = 8;
        sys.sage.accel.pe_buffer_elems = 64;
        sys
    }

    fn spgemm_workload(a: &CooMatrix, b: &CooMatrix) -> SageWorkload {
        SageWorkload::spgemm(
            a.rows(),
            a.cols(),
            b.cols(),
            a.nnz() as u64,
            b.nnz() as u64,
            DataType::Fp32,
        )
    }

    fn pinned_eval(sys: &FlexSystem, w: &SageWorkload, choice: FormatChoice) -> Evaluation {
        sys.sage
            .evaluate(w, &choice, sparseflex_sage::eval::ConversionMode::Hardware)
            .expect("pinned choice evaluates")
    }

    #[test]
    fn pipelined_output_matches_monolithic_run() {
        let sys = small_system();
        let a = random_matrix(24, 32, 90, 1);
        let b = random_matrix(32, 40, 120, 2);
        let w = spgemm_workload(&a, &b);
        let mono = sys.run_functional(&a, &b, &w).unwrap();
        let piped = sys.run_pipelined(&a, &b, &w).unwrap();
        assert_eq!(piped.output, mono.sim.output, "tiling changed the product");
        assert!(piped.tiles.len() > 1, "operand should span several tiles");
        // The second planning of the same workload stats hit the cache.
        assert!(piped.plan_cached(), "second run of the shape must hit");
    }

    #[test]
    fn oversized_stationary_rows_recover_through_the_pipeline() {
        // One B row holds 16 entries; 8-slot PE buffers (4 pairs) cannot
        // hold it, so the monolithic SpGEMM path fails with the typed,
        // recoverable error — and the tiler splits it until it fits.
        let mut sys = FlexSystem::default();
        sys.sage.accel.num_pes = 4;
        sys.sage.accel.pe_buffer_elems = 8;
        let b = CooMatrix::from_triplets(4, 16, (0..16).map(|j| (0, j, (j + 1) as f64)).collect())
            .unwrap();
        let a =
            CooMatrix::from_triplets(3, 4, vec![(0, 0, 1.0), (1, 0, 2.0), (2, 3, 3.0)]).unwrap();
        let w = spgemm_workload(&a, &b);
        let choice = FormatChoice {
            mcf_a: MatrixFormat::Csr,
            mcf_b: MatrixFormat::Csr,
            acf_a: MatrixFormat::Csr,
            acf_b: MatrixFormat::Csr,
        };
        let eval = pinned_eval(&sys, &w, choice);

        let mono = sys.run_with_choice(&a, &b, eval.clone());
        match mono {
            Err(ref e @ RunError::StationaryTooLarge { needed, available }) => {
                assert_eq!(needed, 32);
                assert_eq!(available, 8);
                assert!(e.is_recoverable());
            }
            other => panic!("expected StationaryTooLarge, got {other:?}"),
        }

        let piped = sys
            .run_pipelined_with_evaluation(&a, &b, eval, false)
            .expect("the tiler renders the rejection unreachable");
        let expect = gemm_naive(&a.clone().into_dense(), &b.clone().into_dense());
        assert!(piped.output.approx_eq(&expect, 1e-9));
        // Every tile's stationary rows now fit 4 pairs.
        assert!(piped.tiles.iter().all(|t| t.col_end - t.col_start <= 4));
    }

    #[test]
    fn overlap_beats_serial_when_conversion_is_nontrivial() {
        // Fig. 12-class shape: compressed MCF != ACF so every tile pays a
        // real conversion, spread over many tiles.
        let sys = small_system();
        let a = random_matrix(40, 48, 300, 5);
        let b = random_matrix(48, 64, 900, 6);
        let w = spgemm_workload(&a, &b);
        let choice = FormatChoice {
            mcf_a: MatrixFormat::Csr,
            mcf_b: MatrixFormat::Csr,
            acf_a: MatrixFormat::Csr,
            acf_b: MatrixFormat::Csc,
        };
        let eval = pinned_eval(&sys, &w, choice);
        let run = sys
            .run_pipelined_with_evaluation(&a, &b, eval, false)
            .unwrap();
        assert!(run.tiles.len() >= 2);
        assert!(
            run.overlapped_cycles() < run.serial_cycles(),
            "overlap {} !< serial {}",
            run.overlapped_cycles(),
            run.serial_cycles()
        );
        let expect = gemm_naive(&a.clone().into_dense(), &b.clone().into_dense());
        assert!(run.output.approx_eq(&expect, 1e-9));
    }

    #[test]
    fn batch_serves_jobs_and_caches_plans() {
        let sys = small_system();
        let mut jobs = Vec::new();
        // 6 jobs over 2 distinct shapes -> at most 2 searches... but the
        // racing workers may each miss once; at least half must hit.
        for i in 0..3u64 {
            jobs.push(BatchJob::spgemm(
                random_matrix(16, 20, 60, 10 + i),
                random_matrix(20, 24, 80, 20 + i),
                DataType::Fp32,
            ));
            jobs.push(BatchJob::spgemm(
                random_matrix(12, 16, 40, 30 + i),
                random_matrix(16, 18, 50, 40 + i),
                DataType::Fp32,
            ));
        }
        let batch = sys.run_batch(&jobs);
        assert_eq!(batch.results.len(), 6);
        assert_eq!(batch.succeeded(), 6);
        assert!(batch.workers >= 1);
        assert_eq!(sys.planner.cache.len(), 2, "two distinct shapes");
        assert!(
            batch.plan_cache_hits + batch.plans_computed == 6,
            "every job either hits or computes"
        );
        assert!(batch.plan_cache_hits >= 2, "repeated shapes must hit");
        // Every job's output is correct.
        for (job, res) in jobs.iter().zip(&batch.results) {
            let run = res.as_ref().unwrap();
            let expect = gemm_naive(&job.a.clone().into_dense(), &job.b.clone().into_dense());
            assert!(run.output.approx_eq(&expect, 1e-9));
        }
        assert!(batch.total_overlapped_cycles() > 0);
    }

    #[test]
    fn batch_cache_persists_across_calls() {
        // Satellite + acceptance: the batch front-end must reuse the
        // system planner's cache across successive run_batch calls.
        let sys = small_system();
        let jobs = vec![BatchJob::spgemm(
            random_matrix(16, 20, 60, 77),
            random_matrix(20, 24, 80, 78),
            DataType::Fp32,
        )];
        let first = sys.run_batch(&jobs);
        assert_eq!(first.plans_computed, 1, "cold cache must search");
        let second = sys.run_batch(&jobs);
        assert!(
            second.plan_cache_hits > 0,
            "the second batch call must hit the persistent cache"
        );
        assert_eq!(second.plans_computed, 0);
        assert_eq!(
            second.results[0].as_ref().unwrap().output,
            first.results[0].as_ref().unwrap().output
        );
    }

    #[test]
    fn sub_pair_buffers_are_unrecoverable() {
        // A 1-slot PE buffer cannot hold even one compressed pair; no
        // tiling fixes that, so the pipeline fails with the same typed
        // error flagged *unrecoverable* (no retry loop).
        let mut sys = FlexSystem::default();
        sys.sage.accel.num_pes = 4;
        sys.sage.accel.pe_buffer_elems = 1;
        let a = random_matrix(4, 6, 8, 1);
        let b = random_matrix(6, 8, 12, 2);
        let w = spgemm_workload(&a, &b);
        let choice = FormatChoice {
            mcf_a: MatrixFormat::Csr,
            mcf_b: MatrixFormat::Csr,
            acf_a: MatrixFormat::Csr,
            acf_b: MatrixFormat::Csr,
        };
        let eval = pinned_eval(&sys, &w, choice);
        match sys.run_pipelined_with_evaluation(&a, &b, eval, false) {
            Err(e @ RunError::StationaryTooLarge { .. }) => {
                assert!(!e.is_recoverable(), "no tiling can fix a 1-slot buffer")
            }
            other => panic!("expected unrecoverable StationaryTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn shape_mismatch_is_typed() {
        let sys = small_system();
        let a = random_matrix(4, 5, 6, 1);
        let b = random_matrix(7, 3, 6, 2);
        let w = SageWorkload::spgemm(4, 5, 3, 6, 6, DataType::Fp32);
        assert!(matches!(
            sys.run_pipelined(&a, &b, &w),
            Err(RunError::ShapeMismatch {
                a_cols: 5,
                b_rows: 7
            })
        ));
    }
}

//! Online calibration of the stats cost model from executed-plan traces.
//!
//! Every executed plan yields a [`PlanTrace`] comparing the planner's
//! predicted per-tile cycles against what the cycle-accurate simulator
//! measured. The [`Calibrator`] closes that loop: it accumulates the
//! (predicted, measured) pairs per cost-model *lane* — MINT conversion,
//! weight-stationary compute, Gustavson SpGEMM compute — and refits a
//! multiplicative coefficient per lane by least squares, so repeated
//! traffic tightens the stats model toward the machine it actually runs
//! on. The cycle-exact [`CostModel::Structure`] oracle needs no
//! calibration and its traces are ignored.
//!
//! The fit is a slope through the origin: measured ≈ c · predicted, with
//! `c = Σ p·m / Σ p²` minimizing the squared residual. Predictions are
//! stored **de-scaled** (divided by the coefficient that produced them),
//! so samples stay in raw model units across generations and the fit
//! never compounds its own corrections.
//!
//! Calibration is **versioned**: [`Calibrator::recalibrate`] bumps a
//! generation counter that the planner folds into its cache keys, so
//! every plan-cache row planned under stale coefficients misses exactly
//! once and replans — and [`ExecutionPlan::explain`] prints the
//! generation a plan was made under.
//!
//! [`ExecutionPlan::explain`]: crate::plan::ExecutionPlan::explain

use crate::plan::{CostModel, Dataflow, PlanTrace};
use std::sync::Mutex;

/// Per-lane sample cap: under sustained traffic the calibrator keeps the
/// first `MAX_SAMPLES_PER_LANE` (raw predicted, measured) pairs per lane
/// and drops the rest, bounding memory like the plan cache bounds plans.
pub const MAX_SAMPLES_PER_LANE: usize = 4096;

/// Multiplicative corrections applied to the stats model's cycle lanes
/// (1.0 = the uncalibrated analytic model).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Coefficients {
    /// Scales MINT conversion-cycle predictions (both operands).
    pub conv: f64,
    /// Scales compute-cycle predictions for weight-stationary plans.
    pub compute_ws: f64,
    /// Scales compute-cycle predictions for Gustavson SpGEMM plans.
    pub compute_spgemm: f64,
}

impl Default for Coefficients {
    fn default() -> Self {
        Coefficients {
            conv: 1.0,
            compute_ws: 1.0,
            compute_spgemm: 1.0,
        }
    }
}

impl Coefficients {
    /// The compute coefficient for a plan's dataflow.
    pub fn compute(&self, dataflow: Dataflow) -> f64 {
        match dataflow {
            Dataflow::GustavsonSpGemm => self.compute_spgemm,
            Dataflow::WeightStationary => self.compute_ws,
        }
    }
}

/// One lane's regression samples (parallel vectors, bounded).
#[derive(Debug, Clone, Default)]
struct LaneSamples {
    raw_predicted: Vec<f64>,
    measured: Vec<f64>,
}

impl LaneSamples {
    fn push(&mut self, raw_predicted: f64, measured: f64) {
        if self.raw_predicted.len() < MAX_SAMPLES_PER_LANE {
            self.raw_predicted.push(raw_predicted);
            self.measured.push(measured);
        }
    }

    /// Least-squares slope through the origin, `None` when the lane has
    /// no informative samples (all-zero predictions fit any slope).
    fn slope(&self) -> Option<f64> {
        let spp: f64 = self.raw_predicted.iter().map(|p| p * p).sum();
        if spp <= 0.0 {
            return None;
        }
        let spm: f64 = self
            .raw_predicted
            .iter()
            .zip(&self.measured)
            .map(|(p, m)| p * m)
            .sum();
        let c = spm / spp;
        (c.is_finite() && c > 0.0).then_some(c)
    }

    /// Mean |c·p − m| / max(m, 1) over the lane's samples.
    fn error_sum(&self, c: f64) -> (f64, usize) {
        let sum = self
            .raw_predicted
            .iter()
            .zip(&self.measured)
            .map(|(p, m)| (c * p - m).abs() / m.max(1.0))
            .sum();
        (sum, self.raw_predicted.len())
    }
}

#[derive(Debug, Clone, Default)]
struct CalState {
    generation: u64,
    coeffs: Coefficients,
    conv: LaneSamples,
    compute_ws: LaneSamples,
    compute_spgemm: LaneSamples,
}

/// Accumulates executed-plan traces and refits the stats cost model's
/// per-lane coefficients by least squares (see the module docs).
/// Thread-safe and shared by reference, like the plan cache it
/// invalidates.
#[derive(Debug, Default)]
pub struct Calibrator {
    state: Mutex<CalState>,
}

impl Clone for Calibrator {
    fn clone(&self) -> Self {
        Calibrator {
            state: Mutex::new(self.state.lock().expect("calibrator poisoned").clone()),
        }
    }
}

impl Calibrator {
    /// The calibration generation: 0 until the first
    /// [`recalibrate`](Self::recalibrate), bumped by one per refit. Plan
    /// cache keys include this, so a bump invalidates exactly the rows
    /// planned under older coefficients.
    pub fn generation(&self) -> u64 {
        self.state.lock().expect("calibrator poisoned").generation
    }

    /// The coefficients currently applied to stats-model predictions.
    pub fn coefficients(&self) -> Coefficients {
        self.state.lock().expect("calibrator poisoned").coeffs
    }

    /// Total (predicted, measured) pairs accumulated across lanes.
    pub fn samples(&self) -> usize {
        let s = self.state.lock().expect("calibrator poisoned");
        s.conv.raw_predicted.len()
            + s.compute_ws.raw_predicted.len()
            + s.compute_spgemm.raw_predicted.len()
    }

    /// Record one executed plan's trace. Only [`CostModel::Stats`]
    /// traces feed the fit — the structure oracle is already cycle-exact
    /// — and each tile contributes one conversion-lane and one
    /// compute-lane sample. The trace's predictions carry the
    /// coefficients they were planned under; they are de-scaled by the
    /// current coefficients so stored samples stay in raw model units.
    pub fn record_trace(&self, dataflow: Dataflow, trace: &PlanTrace) {
        if trace.cost_model != CostModel::Stats {
            return;
        }
        let mut s = self.state.lock().expect("calibrator poisoned");
        let c_conv = s.coeffs.conv.max(f64::MIN_POSITIVE);
        let c_comp = s.coeffs.compute(dataflow).max(f64::MIN_POSITIVE);
        for t in &trace.tiles {
            s.conv.push(
                t.predicted_conv_cycles as f64 / c_conv,
                t.measured_conv_cycles as f64,
            );
            let lane = match dataflow {
                Dataflow::GustavsonSpGemm => &mut s.compute_spgemm,
                Dataflow::WeightStationary => &mut s.compute_ws,
            };
            lane.push(
                t.predicted_compute_cycles as f64 / c_comp,
                t.measured_compute_cycles as f64,
            );
        }
    }

    /// Refit every lane's coefficient from the accumulated samples and
    /// bump the calibration generation (lanes without informative
    /// samples keep their current coefficient). Returns the new
    /// coefficients.
    pub fn recalibrate(&self) -> Coefficients {
        let mut s = self.state.lock().expect("calibrator poisoned");
        if let Some(c) = s.conv.slope() {
            s.coeffs.conv = c;
        }
        if let Some(c) = s.compute_ws.slope() {
            s.coeffs.compute_ws = c;
        }
        if let Some(c) = s.compute_spgemm.slope() {
            s.coeffs.compute_spgemm = c;
        }
        s.generation += 1;
        s.coeffs
    }

    /// Mean |c·predicted − measured| / max(measured, 1) over every
    /// stored sample under the **current** coefficients — the scalar the
    /// `BENCH_search` exhibit tracks per calibration round. `None` until
    /// a trace has been recorded.
    pub fn mean_abs_error(&self) -> Option<f64> {
        let s = self.state.lock().expect("calibrator poisoned");
        let lanes = [
            (&s.conv, s.coeffs.conv),
            (&s.compute_ws, s.coeffs.compute_ws),
            (&s.compute_spgemm, s.coeffs.compute_spgemm),
        ];
        let (mut sum, mut n) = (0.0, 0usize);
        for (lane, c) in lanes {
            let (e, k) = lane.error_sum(c);
            sum += e;
            n += k;
        }
        (n > 0).then(|| sum / n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::TileCompare;
    use sparseflex_mint::OverlapSchedule;

    /// A stats trace whose measured cycles are exactly `factor` × the
    /// predicted ones in both lanes.
    fn scaled_trace(predicted: &[(u64, u64)], factor: f64) -> PlanTrace {
        let tiles = predicted
            .iter()
            .map(|&(conv, comp)| TileCompare {
                col_start: 0,
                col_end: 1,
                predicted_conv_cycles: conv,
                measured_conv_cycles: (conv as f64 * factor) as u64,
                predicted_compute_cycles: comp,
                measured_compute_cycles: (comp as f64 * factor) as u64,
            })
            .collect();
        PlanTrace {
            cost_model: CostModel::Stats,
            tiles,
            predicted_schedule: OverlapSchedule::default(),
            measured_schedule: OverlapSchedule::default(),
        }
    }

    #[test]
    fn recalibration_recovers_a_uniform_scale_factor() {
        let cal = Calibrator::default();
        cal.record_trace(
            Dataflow::WeightStationary,
            &scaled_trace(&[(100, 1_000), (240, 2_200), (60, 800)], 1.5),
        );
        let before = cal.mean_abs_error().unwrap();
        let c = cal.recalibrate();
        assert!((c.conv - 1.5).abs() < 1e-12, "conv slope {}", c.conv);
        assert!((c.compute_ws - 1.5).abs() < 1e-12);
        assert_eq!(c.compute_spgemm, 1.0, "untouched lane keeps identity");
        let after = cal.mean_abs_error().unwrap();
        assert!(
            after < before,
            "fit must shrink the error: {after} >= {before}"
        );
        assert!(after < 1e-9, "a uniform scale is fit exactly");
    }

    #[test]
    fn generations_count_refits_and_structure_traces_are_ignored() {
        let cal = Calibrator::default();
        assert_eq!(cal.generation(), 0);
        let mut t = scaled_trace(&[(10, 100)], 2.0);
        t.cost_model = CostModel::Structure;
        cal.record_trace(Dataflow::GustavsonSpGemm, &t);
        assert_eq!(cal.samples(), 0, "structure traces must not feed the fit");
        cal.recalibrate();
        cal.recalibrate();
        assert_eq!(cal.generation(), 2);
        // No samples: coefficients stay identity.
        assert_eq!(cal.coefficients(), Coefficients::default());
    }

    #[test]
    fn descaling_keeps_samples_in_raw_units_across_generations() {
        let cal = Calibrator::default();
        // Round 1: raw model underpredicts 2x.
        cal.record_trace(
            Dataflow::WeightStationary,
            &scaled_trace(&[(100, 500)], 2.0),
        );
        let c1 = cal.recalibrate();
        assert!((c1.compute_ws - 2.0).abs() < 1e-12);
        // Round 2: the *planner* now predicts with the 2.0 coefficient
        // applied, so a perfectly-calibrated trace has predicted ==
        // measured. De-scaling must map it back to raw units and keep
        // the slope at 2.0 instead of compounding to 4.0.
        cal.record_trace(
            Dataflow::WeightStationary,
            &scaled_trace(&[(200, 1_000)], 1.0),
        );
        let c2 = cal.recalibrate();
        assert!(
            (c2.compute_ws - 2.0).abs() < 1e-9,
            "slope compounded: {}",
            c2.compute_ws
        );
        assert_eq!(cal.generation(), 2);
    }

    #[test]
    fn sample_cap_bounds_memory() {
        let cal = Calibrator::default();
        let big: Vec<(u64, u64)> = (0..MAX_SAMPLES_PER_LANE as u64 + 100)
            .map(|i| (i + 1, i + 1))
            .collect();
        cal.record_trace(Dataflow::WeightStationary, &scaled_trace(&big, 1.0));
        assert_eq!(cal.samples(), 2 * MAX_SAMPLES_PER_LANE);
    }

    #[test]
    fn clones_are_independent() {
        let cal = Calibrator::default();
        cal.record_trace(Dataflow::WeightStationary, &scaled_trace(&[(10, 20)], 2.0));
        let snap = cal.clone();
        cal.recalibrate();
        assert_eq!(snap.generation(), 0, "clone must not see later refits");
        assert_eq!(cal.generation(), 1);
    }
}

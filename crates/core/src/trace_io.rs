//! Persisting executed-plan traces: a dependency-free JSON round-trip
//! for [`PlanTrace`]s so calibration survives the process.
//!
//! Every executed plan yields a [`PlanTrace`]; the [`Calibrator`] fits
//! its coefficients from them. Serializing the accumulated traces (to
//! `results/traces.json` by convention) lets a fresh process
//! **warm-start** calibration from yesterday's traffic instead of
//! re-learning from scratch: load with [`read_traces`], replay with
//! [`Calibrator::warm_start`], and the first recalibration already has
//! the full sample history.
//!
//! The workspace deliberately carries no serde; the writer is plain
//! `format!` (like the bench exhibits) and the reader is a minimal
//! recursive-descent parser over exactly the subset the writer emits —
//! round-trip equality is pinned by test.

use crate::calibrate::Calibrator;
use crate::plan::{CostModel, Dataflow, PlanTrace, TileCompare};
use sparseflex_mint::OverlapSchedule;
use std::fmt::Write as _;
use std::path::Path;

/// One executed plan's trace plus the dataflow it ran under (the
/// calibrator needs the dataflow to route compute samples to the right
/// coefficient lane).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredTrace {
    /// The dataflow the plan executed under.
    pub dataflow: Dataflow,
    /// The predicted-vs-measured record.
    pub trace: PlanTrace,
}

impl Calibrator {
    /// Replay previously persisted traces into the calibrator — the
    /// warm-start path after [`read_traces`]. Coefficients are refit on
    /// the next [`recalibrate`](Calibrator::recalibrate) call.
    pub fn warm_start(&self, traces: &[StoredTrace]) {
        for t in traces {
            self.record_trace(t.dataflow, &t.trace);
        }
    }
}

fn dataflow_str(d: Dataflow) -> &'static str {
    match d {
        Dataflow::GustavsonSpGemm => "gustavson_spgemm",
        Dataflow::WeightStationary => "weight_stationary",
    }
}

fn cost_model_str(c: CostModel) -> &'static str {
    match c {
        CostModel::Stats => "stats",
        CostModel::Structure => "structure",
    }
}

/// Render traces as a JSON array (stable field order, two-space indent).
pub fn traces_to_json(traces: &[StoredTrace]) -> String {
    let mut out = String::from("[\n");
    for (i, st) in traces.iter().enumerate() {
        let t = &st.trace;
        let _ = writeln!(out, "  {{");
        let _ = writeln!(out, "    \"dataflow\": \"{}\",", dataflow_str(st.dataflow));
        let _ = writeln!(
            out,
            "    \"cost_model\": \"{}\",",
            cost_model_str(t.cost_model)
        );
        let _ = writeln!(
            out,
            "    \"predicted_schedule\": {{\"overlapped_cycles\": {}, \"serial_cycles\": {}}},",
            t.predicted_schedule.overlapped_cycles, t.predicted_schedule.serial_cycles
        );
        let _ = writeln!(
            out,
            "    \"measured_schedule\": {{\"overlapped_cycles\": {}, \"serial_cycles\": {}}},",
            t.measured_schedule.overlapped_cycles, t.measured_schedule.serial_cycles
        );
        let _ = writeln!(out, "    \"tiles\": [");
        for (j, tile) in t.tiles.iter().enumerate() {
            let _ = writeln!(
                out,
                "      {{\"col_start\": {}, \"col_end\": {}, \
                 \"predicted_conv_cycles\": {}, \"measured_conv_cycles\": {}, \
                 \"predicted_compute_cycles\": {}, \"measured_compute_cycles\": {}}}{}",
                tile.col_start,
                tile.col_end,
                tile.predicted_conv_cycles,
                tile.measured_conv_cycles,
                tile.predicted_compute_cycles,
                tile.measured_compute_cycles,
                if j + 1 < t.tiles.len() { "," } else { "" }
            );
        }
        let _ = writeln!(out, "    ]");
        let _ = writeln!(out, "  }}{}", if i + 1 < traces.len() { "," } else { "" });
    }
    out.push_str("]\n");
    out
}

/// Write traces to `path` as JSON, creating parent directories.
pub fn write_traces(path: &Path, traces: &[StoredTrace]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, traces_to_json(traces))
}

/// Read traces back from a file written by [`write_traces`].
pub fn read_traces(path: &Path) -> std::io::Result<Vec<StoredTrace>> {
    let text = std::fs::read_to_string(path)?;
    traces_from_json(&text).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

// ---- A minimal JSON reader for the subset the writer emits. ---------

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

type ParseResult<T> = Result<T, String>;

impl<'a> Reader<'a> {
    fn new(text: &'a str) -> Self {
        Reader {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> ParseResult<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", byte as char, self.pos))
        }
    }

    /// Consume `byte` if it is next; report whether it was.
    fn eat(&mut self, byte: u8) -> bool {
        if self.peek() == Some(byte) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn string(&mut self) -> ParseResult<String> {
        self.expect(b'"')?;
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b'"' {
                let s = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| e.to_string())?
                    .to_string();
                self.pos += 1;
                return Ok(s);
            }
            // The writer never emits escapes; reject rather than
            // mis-parse hand-edited files.
            if b == b'\\' {
                return Err(format!("unsupported escape at byte {}", self.pos));
            }
            self.pos += 1;
        }
        Err("unterminated string".into())
    }

    fn number(&mut self) -> ParseResult<u64> {
        self.skip_ws();
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(format!("expected a number at byte {start}"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| e.to_string())?
            .parse()
            .map_err(|e: std::num::ParseIntError| e.to_string())
    }

    fn key(&mut self) -> ParseResult<String> {
        let k = self.string()?;
        self.expect(b':')?;
        Ok(k)
    }

    fn schedule(&mut self) -> ParseResult<OverlapSchedule> {
        self.expect(b'{')?;
        let mut sched = OverlapSchedule::default();
        loop {
            match self.key()?.as_str() {
                "overlapped_cycles" => sched.overlapped_cycles = self.number()?,
                "serial_cycles" => sched.serial_cycles = self.number()?,
                k => return Err(format!("unknown schedule key {k:?}")),
            }
            if !self.eat(b',') {
                break;
            }
        }
        self.expect(b'}')?;
        Ok(sched)
    }

    fn tile(&mut self) -> ParseResult<TileCompare> {
        self.expect(b'{')?;
        let mut t = TileCompare {
            col_start: 0,
            col_end: 0,
            predicted_conv_cycles: 0,
            measured_conv_cycles: 0,
            predicted_compute_cycles: 0,
            measured_compute_cycles: 0,
        };
        loop {
            match self.key()?.as_str() {
                "col_start" => t.col_start = self.number()? as usize,
                "col_end" => t.col_end = self.number()? as usize,
                "predicted_conv_cycles" => t.predicted_conv_cycles = self.number()?,
                "measured_conv_cycles" => t.measured_conv_cycles = self.number()?,
                "predicted_compute_cycles" => t.predicted_compute_cycles = self.number()?,
                "measured_compute_cycles" => t.measured_compute_cycles = self.number()?,
                k => return Err(format!("unknown tile key {k:?}")),
            }
            if !self.eat(b',') {
                break;
            }
        }
        self.expect(b'}')?;
        Ok(t)
    }

    fn stored_trace(&mut self) -> ParseResult<StoredTrace> {
        self.expect(b'{')?;
        let mut dataflow = None;
        let mut cost_model = None;
        let mut predicted_schedule = None;
        let mut measured_schedule = None;
        let mut tiles = None;
        loop {
            match self.key()?.as_str() {
                "dataflow" => {
                    dataflow = Some(match self.string()?.as_str() {
                        "gustavson_spgemm" => Dataflow::GustavsonSpGemm,
                        "weight_stationary" => Dataflow::WeightStationary,
                        d => return Err(format!("unknown dataflow {d:?}")),
                    })
                }
                "cost_model" => {
                    cost_model = Some(match self.string()?.as_str() {
                        "stats" => CostModel::Stats,
                        "structure" => CostModel::Structure,
                        c => return Err(format!("unknown cost model {c:?}")),
                    })
                }
                "predicted_schedule" => predicted_schedule = Some(self.schedule()?),
                "measured_schedule" => measured_schedule = Some(self.schedule()?),
                "tiles" => {
                    let mut v = Vec::new();
                    self.expect(b'[')?;
                    if !self.eat(b']') {
                        loop {
                            v.push(self.tile()?);
                            if !self.eat(b',') {
                                break;
                            }
                        }
                        self.expect(b']')?;
                    }
                    tiles = Some(v);
                }
                k => return Err(format!("unknown trace key {k:?}")),
            }
            if !self.eat(b',') {
                break;
            }
        }
        self.expect(b'}')?;
        Ok(StoredTrace {
            dataflow: dataflow.ok_or("trace missing \"dataflow\"")?,
            trace: PlanTrace {
                cost_model: cost_model.ok_or("trace missing \"cost_model\"")?,
                tiles: tiles.ok_or("trace missing \"tiles\"")?,
                predicted_schedule: predicted_schedule
                    .ok_or("trace missing \"predicted_schedule\"")?,
                measured_schedule: measured_schedule
                    .ok_or("trace missing \"measured_schedule\"")?,
            },
        })
    }
}

/// Parse the JSON written by [`traces_to_json`] back into traces.
pub fn traces_from_json(text: &str) -> ParseResult<Vec<StoredTrace>> {
    let mut r = Reader::new(text);
    let mut traces = Vec::new();
    r.expect(b'[')?;
    if !r.eat(b']') {
        loop {
            traces.push(r.stored_trace()?);
            if !r.eat(b',') {
                break;
            }
        }
        r.expect(b']')?;
    }
    if r.peek().is_some() {
        return Err(format!("trailing content at byte {}", r.pos));
    }
    Ok(traces)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_traces() -> Vec<StoredTrace> {
        let tile = |s: usize, e: usize, pc: u64, mc: u64, pk: u64, mk: u64| TileCompare {
            col_start: s,
            col_end: e,
            predicted_conv_cycles: pc,
            measured_conv_cycles: mc,
            predicted_compute_cycles: pk,
            measured_compute_cycles: mk,
        };
        vec![
            StoredTrace {
                dataflow: Dataflow::GustavsonSpGemm,
                trace: PlanTrace {
                    cost_model: CostModel::Stats,
                    tiles: vec![
                        tile(0, 8, 120, 140, 900, 1_020),
                        tile(8, 16, 80, 75, 600, 640),
                    ],
                    predicted_schedule: OverlapSchedule {
                        overlapped_cycles: 1_620,
                        serial_cycles: 1_700,
                    },
                    measured_schedule: OverlapSchedule {
                        overlapped_cycles: 1_735,
                        serial_cycles: 1_875,
                    },
                },
            },
            StoredTrace {
                dataflow: Dataflow::WeightStationary,
                trace: PlanTrace {
                    cost_model: CostModel::Structure,
                    tiles: vec![],
                    predicted_schedule: OverlapSchedule::default(),
                    measured_schedule: OverlapSchedule::default(),
                },
            },
        ]
    }

    #[test]
    fn round_trip_preserves_every_field() {
        let traces = sample_traces();
        let json = traces_to_json(&traces);
        let back = traces_from_json(&json).expect("writer output parses");
        assert_eq!(back, traces);
    }

    #[test]
    fn empty_list_round_trips() {
        let json = traces_to_json(&[]);
        assert_eq!(traces_from_json(&json).unwrap(), vec![]);
    }

    #[test]
    fn file_round_trip_through_write_and_read() {
        let traces = sample_traces();
        let dir = std::env::temp_dir().join(format!("sparseflex-trace-io-{}", std::process::id()));
        let path = dir.join("nested").join("traces.json");
        write_traces(&path, &traces).expect("writes with parent creation");
        let back = read_traces(&path).expect("reads back");
        assert_eq!(back, traces);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn warm_start_replays_stats_traces_into_the_calibrator() {
        let cal = Calibrator::default();
        cal.warm_start(&sample_traces());
        // 2 tiles x 2 lanes from the stats trace; the structure trace
        // contributes nothing.
        assert_eq!(cal.samples(), 4);
        assert_eq!(cal.generation(), 0, "warm-start must not refit by itself");
    }

    #[test]
    fn malformed_inputs_are_rejected_not_misread() {
        for bad in ["", "{", "[{}]", "[{\"dataflow\": \"nope\"}]", "[] trailing"] {
            assert!(traces_from_json(bad).is_err(), "accepted {bad:?}");
        }
    }
}

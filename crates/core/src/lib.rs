//! # sparseflex-core
//!
//! The integrated `Flex_Flex_HW` system — the paper's proposed design
//! point (Table I, bottom row): a weight-stationary sparse accelerator
//! whose PEs support multiple ACFs (§IV), with MINT converting formats in
//! hardware beside the datapath (§V) and SAGE choosing the MCF/ACF
//! combination per workload (§VI).
//!
//! Planning and execution are split into two layers, exactly where the
//! paper splits them (Fig. 1b): a [`planner::Planner`] turns a workload
//! into a typed [`plan::ExecutionPlan`] (MCF/ACF choice, column-tile
//! schedule, predicted cycle budget — cached in a bounded LRU
//! [`planner::PlanCache`] keyed on workload statistics + hardware
//! fingerprint), and one shared executor runs plans on the accelerator,
//! yielding a [`plan::PlanTrace`] of predicted vs measured cycles.
//!
//! Every run path is a thin front-end over that pair:
//!
//! - [`FlexSystem::plan`] / [`FlexSystem::compare_classes`] — the
//!   analytic path used by the Fig. 12/13/14 benches: SAGE searches the
//!   format space and returns full cycle/energy/EDP breakdowns for this
//!   work and for every Table II baseline class.
//! - [`FlexSystem::run_functional`] — the monolithic functional path: a
//!   single-tile plan (whole-operand conversion strictly before
//!   compute), executed on the cycle-accurate simulator and verified
//!   against the software kernels in tests.
//! - [`FlexSystem::run_pipelined`] / [`FlexSystem::run_batch`] — the
//!   tile-grained [`pipeline`] runtime: the stationary operand is cut
//!   into scratchpad-sized column tiles and MINT converts tile *t+1*
//!   while the array computes tile *t* (double-buffered), lifting the
//!   one-residency operand limit and exposing overlapped vs serial cycle
//!   totals; the batch front-end serves many workloads across parallel
//!   virtual accelerator instances, sharing the system planner's cache
//!   across jobs, threads and successive batch calls.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibrate;
pub mod casestudy;
pub mod pipeline;
pub mod plan;
pub mod planner;
pub mod system;
pub mod trace_io;

pub use calibrate::{Calibrator, Coefficients, MAX_SAMPLES_PER_LANE};
pub use casestudy::{layer_edp, LayerEdp};
pub use pipeline::{BatchJob, BatchRun, PipelineRun, TileTrace};
pub use plan::{CostModel, Dataflow, ExecutionPlan, PlanPrediction, PlanTrace, TileCompare};
pub use planner::{CacheCounters, PlanCache, PlanDiscipline, Planner, DEFAULT_PLAN_CACHE_CAPACITY};
pub use system::{ClassComparison, CustomRun, FlexSystem, FunctionalRun, RunError, SystemPlan};
pub use trace_io::{read_traces, traces_from_json, traces_to_json, write_traces, StoredTrace};

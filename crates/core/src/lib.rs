//! # sparseflex-core
//!
//! The integrated `Flex_Flex_HW` system — the paper's proposed design
//! point (Table I, bottom row): a weight-stationary sparse accelerator
//! whose PEs support multiple ACFs (§IV), with MINT converting formats in
//! hardware beside the datapath (§V) and SAGE choosing the MCF/ACF
//! combination per workload (§VI).
//!
//! Two execution paths are provided:
//!
//! - [`FlexSystem::plan`] / [`FlexSystem::compare_classes`] — the
//!   analytic path used by the Fig. 12/13/14 benches: SAGE searches the
//!   format space and returns full cycle/energy/EDP breakdowns for this
//!   work and for every Table II baseline class.
//! - [`FlexSystem::run_functional`] — the end-to-end functional path used
//!   by tests and examples: real operands are encoded in the chosen MCFs,
//!   converted through the MINT block engine, executed on the
//!   cycle-accurate simulator, and the output matrix is returned (and
//!   verified against the software kernels in tests).

#![warn(missing_docs)]

pub mod casestudy;
pub mod system;

pub use casestudy::{layer_edp, LayerEdp};
pub use system::{ClassComparison, FlexSystem, FunctionalRun, SystemPlan};

//! # sparseflex-core
//!
//! The integrated `Flex_Flex_HW` system — the paper's proposed design
//! point (Table I, bottom row): a weight-stationary sparse accelerator
//! whose PEs support multiple ACFs (§IV), with MINT converting formats in
//! hardware beside the datapath (§V) and SAGE choosing the MCF/ACF
//! combination per workload (§VI).
//!
//! Three execution paths are provided:
//!
//! - [`FlexSystem::plan`] / [`FlexSystem::compare_classes`] — the
//!   analytic path used by the Fig. 12/13/14 benches: SAGE searches the
//!   format space and returns full cycle/energy/EDP breakdowns for this
//!   work and for every Table II baseline class.
//! - [`FlexSystem::run_functional`] — the monolithic functional path:
//!   real operands are encoded in the chosen MCFs, converted through the
//!   MINT block engine strictly before compute, executed on the
//!   cycle-accurate simulator, and the output matrix is returned (and
//!   verified against the software kernels in tests).
//! - [`FlexSystem::run_pipelined`] / [`FlexSystem::run_batch`] — the
//!   tile-grained [`pipeline`] runtime: the stationary operand is cut
//!   into scratchpad-sized column tiles and MINT converts tile *t+1*
//!   while the array computes tile *t* (double-buffered), lifting the
//!   one-residency operand limit and exposing overlapped vs serial cycle
//!   totals; the batch front-end serves many workloads across parallel
//!   virtual accelerator instances with a SAGE [`PlanCache`].

#![warn(missing_docs)]

pub mod casestudy;
pub mod pipeline;
pub mod system;

pub use casestudy::{layer_edp, LayerEdp};
pub use pipeline::{BatchJob, BatchRun, PipelineRun, PlanCache, TileTrace};
pub use system::{ClassComparison, FlexSystem, FunctionalRun, RunError, SystemPlan};

//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements the subset of proptest that the workspace's property
//! suites use:
//!
//! - [`Strategy`] with `prop_map` / `prop_flat_map`
//! - range strategies (`0..n`, `-8i32..8`, `2u32..6`, …) and tuple
//!   strategies up to arity 6
//! - [`collection::vec`] with either an exact length or a length range
//! - the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header
//! - `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`
//!
//! Differences from real proptest, by design:
//!
//! - **No shrinking.** A failing case reports the case index and the run
//!   seed instead of a minimal counterexample.
//! - **Deterministic by default.** Every test function derives its RNG
//!   seed from a fixed run seed plus the case index, so CI runs are
//!   reproducible without a `proptest-regressions/` directory. Set
//!   `PROPTEST_RUN_SEED=<u64>` to explore a different stream locally, and
//!   `PROPTEST_CASES=<n>` to override every suite's case count.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// Error raised by `prop_assert*` inside a property body.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Build a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Runner configuration (subset of proptest's `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property executes.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// Effective case count: the explicit config, unless overridden by
    /// the `PROPTEST_CASES` environment variable.
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.cases)
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The run-level seed: fixed unless `PROPTEST_RUN_SEED` is set.
pub fn run_seed() -> u64 {
    std::env::var("PROPTEST_RUN_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0x5EED_CAFE_F00D_u64)
}

/// A generator of random values (no shrinking).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produce one value from `rng`.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform every generated value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds
    /// out of it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy produced by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn generate(&self, rng: &mut StdRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Collection strategies.
pub mod collection {
    use super::*;

    /// Length specification for [`vec()`]: an exact length or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for a `Vec` whose elements come from `element` and whose
    /// length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy produced by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 == self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The glob import every proptest suite starts with.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Assert a condition inside a property body; on failure the current
/// case aborts with a `TestCaseError` carrying the location and message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "{} at {}:{}",
                format!($($fmt)*),
                file!(),
                line!()
            )));
        }
    };
}

/// Assert equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} == {:?}: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Assert inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {:?} != {:?}: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

#[doc(hidden)]
pub fn __run_property<F>(test_name: &str, config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    let cases = config.effective_cases();
    let seed = run_seed();
    for i in 0..cases {
        // Per-case RNG: independent of execution order and of how much
        // randomness earlier cases consumed.
        let mut hasher = seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        for b in test_name.bytes() {
            hasher = hasher.rotate_left(8) ^ b as u64;
        }
        let mut rng = StdRng::seed_from_u64(hasher);
        if let Err(e) = case(&mut rng) {
            panic!(
                "property `{test_name}` failed at case {i}/{cases} \
                 (run seed {seed}; set PROPTEST_RUN_SEED to reproduce): {e}"
            );
        }
    }
}

/// Define property tests. Supports the subset of proptest's surface the
/// workspace uses: an optional `#![proptest_config(...)]` header and
/// `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            $crate::__run_property(stringify!($name), &config, |__rng| {
                $(let $pat = $crate::Strategy::generate(&$strat, __rng);)*
                $body
                ::core::result::Result::Ok(())
            });
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in -8i32..8, n in 1usize..10) {
            prop_assert!((-8..8).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_lengths_respect_spec(
            v in crate::collection::vec(0i32..5, 0..7),
            w in crate::collection::vec(0i32..5, 4usize),
        ) {
            prop_assert!(v.len() < 7);
            prop_assert_eq!(w.len(), 4);
        }

        #[test]
        fn flat_map_dependent_generation(
            pair in (1usize..10).prop_flat_map(|n| {
                crate::collection::vec(0usize..n, 1..5).prop_map(move |v| (n, v))
            }),
        ) {
            let (n, v) = pair;
            prop_assert!(v.iter().all(|&x| x < n));
        }

        #[test]
        fn tuple_patterns_destructure((a, b) in (0i32..4, 0i32..4)) {
            prop_assert!(a < 4 && b < 4);
        }
    }

    #[test]
    fn failing_property_panics_with_case_info() {
        let result = std::panic::catch_unwind(|| {
            crate::__run_property("always_fails", &ProptestConfig::with_cases(3), |_| {
                Err(TestCaseError::fail("boom"))
            });
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("always_fails"), "got: {msg}");
        assert!(msg.contains("boom"), "got: {msg}");
    }

    #[test]
    fn generation_is_deterministic_across_runs() {
        use rand::{rngs::StdRng, SeedableRng};
        let strat = crate::collection::vec(0i32..100, 0..20);
        let mut r1 = StdRng::seed_from_u64(5);
        let mut r2 = StdRng::seed_from_u64(5);
        assert_eq!(strat.generate(&mut r1), strat.generate(&mut r2));
    }
}

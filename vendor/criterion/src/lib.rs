//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements the subset of the criterion 0.5 API that the
//! workspace's `harness = false` bench targets use: [`Criterion`],
//! [`BenchmarkId`], benchmark groups with `sample_size` /
//! `bench_function` / `bench_with_input` / `finish`, `Bencher::iter`,
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! Semantics match criterion's command-line contract closely enough for
//! cargo's two entry points:
//!
//! - `cargo bench` passes `--bench`: each benchmark runs `sample_size`
//!   timed samples and prints mean / min per sample.
//! - `cargo test --benches` does **not** pass `--bench`: each benchmark
//!   body runs exactly once as a smoke test, unmeasured — the same
//!   "test mode" real criterion uses, which keeps `cargo test` fast.
//!
//! No statistical analysis, plotting, or baseline comparison is
//! performed.

#![warn(missing_docs)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque identity function preventing the optimizer from deleting a
/// benchmark body (re-export shim over `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier combining a function name and a parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name` / `parameter` pair, rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id carrying only a parameter (criterion parity).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Timing loop handle passed to every benchmark closure.
pub struct Bencher {
    samples: usize,
    test_mode: bool,
    results: Vec<Duration>,
}

impl Bencher {
    /// Run `f` repeatedly, timing each sample (or once in test mode).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            return;
        }
        // One untimed warm-up sample.
        black_box(f());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.results.push(start.elapsed());
        }
    }
}

fn report(name: &str, b: &Bencher) {
    if b.test_mode {
        println!("test-mode {name}: ok (1 iteration)");
        return;
    }
    if b.results.is_empty() {
        println!("{name}: no samples recorded");
        return;
    }
    let total: Duration = b.results.iter().sum();
    let mean = total / b.results.len() as u32;
    let min = b.results.iter().min().copied().unwrap_or_default();
    println!(
        "bench {name}: mean {mean:?}, min {min:?} ({} samples)",
        b.results.len()
    );
}

/// Benchmark manager: entry point of every bench target.
pub struct Criterion {
    test_mode: bool,
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench passes `--bench`; cargo test --benches does not.
        // Absent the flag we are in criterion's "test mode": run each
        // body once, unmeasured.
        let bench_requested = std::env::args().any(|a| a == "--bench");
        Criterion {
            test_mode: !bench_requested,
            default_samples: 10,
        }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: self.default_samples,
            criterion: self,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: self.default_samples,
            test_mode: self.test_mode,
            results: Vec::new(),
        };
        f(&mut b);
        report(name, &b);
        self
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.samples = n;
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut b = Bencher {
            samples: self.samples,
            test_mode: self.criterion.test_mode,
            results: Vec::new(),
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b);
    }

    /// Benchmark `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.run(id, f);
        self
    }

    /// Benchmark `f` under `id`, passing `input` through to the closure.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), |b| f(b, input));
        self
    }

    /// Close the group (criterion parity; prints nothing extra).
    pub fn finish(self) {}
}

/// Bundle benchmark functions into a single named runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_group(c: &mut Criterion) -> usize {
        let mut calls = 0;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3);
            g.bench_function("plain", |b| b.iter(|| calls += 1));
            g.finish();
        }
        calls
    }

    #[test]
    fn test_mode_runs_body_once() {
        let mut c = Criterion {
            test_mode: true,
            default_samples: 10,
        };
        assert_eq!(run_group(&mut c), 1);
    }

    #[test]
    fn bench_mode_runs_warmup_plus_samples() {
        let mut c = Criterion {
            test_mode: false,
            default_samples: 10,
        };
        assert_eq!(run_group(&mut c), 4); // 1 warm-up + 3 samples
    }

    #[test]
    fn bench_with_input_passes_input_through() {
        let mut c = Criterion {
            test_mode: true,
            default_samples: 10,
        };
        let mut g = c.benchmark_group("inputs");
        let data = vec![1, 2, 3];
        let mut seen = 0;
        g.bench_with_input(BenchmarkId::new("sum", data.len()), &data, |b, d| {
            b.iter(|| seen = d.iter().sum::<i32>())
        });
        g.finish();
        assert_eq!(seen, 6);
    }

    #[test]
    fn benchmark_id_formats_name_slash_param() {
        assert_eq!(BenchmarkId::new("scan", 42).to_string(), "scan/42");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}

//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements exactly the subset of the `rand 0.8` API that the
//! workspace uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over integer and float ranges, and
//! [`Rng::gen_bool`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fully
//! deterministic for a given seed, which is all the seeded synthetic
//! workload generators require. It is **not** the same stream as the
//! real `rand::rngs::StdRng` (ChaCha12), so seeds are not portable
//! across the two implementations; nothing in this workspace depends on
//! the specific stream, only on determinism.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A random number generator that can be seeded from a `u64`.
pub trait SeedableRng: Sized {
    /// Create a new generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can serve as the argument of [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one sample from the range using `rng`.
    fn sample(self, rng: &mut rngs::StdRng) -> T;
}

/// User-facing random-value interface.
pub trait Rng {
    /// Draw a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool;
}

/// Concrete generator implementations.
pub mod rngs {
    use super::SeedableRng;

    /// Deterministic xoshiro256++ generator (stand-in for rand's StdRng).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl StdRng {
        /// Advance the generator and return the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform double in `[0, 1)` (53 random mantissa bits).
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform `u64` in `[0, bound)` via Lemire's multiply-shift with
        /// rejection, so small bounds carry no modulo bias.
        pub fn next_bounded(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty range");
            let threshold = bound.wrapping_neg() % bound;
            loop {
                let x = self.next_u64();
                let m = (x as u128) * (bound as u128);
                if (m as u64) >= threshold {
                    return (m >> 64) as u64;
                }
            }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }
}

impl Rng for rngs::StdRng {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        self.next_f64() < p
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut rngs::StdRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.next_bounded(span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut rngs::StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Only reachable for the full u64/i64 domain.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.next_bounded(span as u64) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut rngs::StdRng) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample(self, rng: &mut rngs::StdRng) -> f32 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.next_f64() as f32 * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3i32..17);
            assert!((3..17).contains(&v));
            let u = rng.gen_range(0u64..=5);
            assert!(u <= 5);
            let f = rng.gen_range(0.5..1.5);
            assert!((0.5..1.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn gen_range_covers_small_domain() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}

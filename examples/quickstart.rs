//! Quickstart: build a sparse workload, let SAGE pick the formats, run
//! the full SAGE → MINT → accelerator pipeline, and verify the result.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use sparseflex::formats::{DataType, SparseMatrix};
use sparseflex::kernels::gemm::gemm_naive;
use sparseflex::sage::SageWorkload;
use sparseflex::system::FlexSystem;
use sparseflex::workloads::synth::random_matrix;

fn main() {
    // A small sparse-times-sparse problem: 96x128 (2% dense) by 128x64
    // (3% dense).
    let a = random_matrix(96, 128, 250, 1);
    let b = random_matrix(128, 64, 250, 2);
    println!(
        "A: {}x{} nnz={} ({:.2}%)   B: {}x{} nnz={} ({:.2}%)",
        a.rows(),
        a.cols(),
        a.nnz(),
        100.0 * a.density(),
        b.rows(),
        b.cols(),
        b.nnz(),
        100.0 * b.density()
    );

    // Describe the workload to SAGE and shrink the accelerator to a
    // walkthrough-friendly size so the cycle-accurate simulator is fast.
    let w = SageWorkload::spgemm(
        a.rows(),
        a.cols(),
        b.cols(),
        a.nnz() as u64,
        b.nnz() as u64,
        DataType::Fp32,
    );
    let mut system = FlexSystem::default();
    system.sage.accel.num_pes = 32;
    system.sage.accel.pe_buffer_elems = 64;

    // 1. SAGE searches the MCF x ACF space.
    let plan = system.plan(&w);
    println!(
        "\nSAGE searched {} candidates and chose: {}",
        plan.candidates, plan.evaluation.choice
    );
    println!(
        "  predicted: {:.0} DRAM + {:.0} conversion + {:.0} compute cycles, {:.3e} J, utilization {:.1}%",
        plan.evaluation.dram_cycles,
        plan.evaluation.conv_cycles,
        plan.evaluation.compute_cycles,
        plan.evaluation.total_energy(),
        100.0 * plan.evaluation.utilization,
    );

    // 2-4. Encode in MCF, convert through MINT, execute on the simulator.
    let run = system
        .run_functional(&a, &b, &w)
        .expect("supported ACF pair");
    println!(
        "\nfunctional run: {} stream cycles, {} total cycles, {} MACs ({:.1}% effective)",
        run.sim.cycles.stream_a,
        run.sim.cycles.total(),
        run.sim.counts.macs,
        100.0 * run.sim.counts.utilization(),
    );
    println!(
        "MINT conversion: A {} cycles, B {} cycles (pipelined)",
        run.conv_a.pipelined_cycles(),
        run.conv_b.pipelined_cycles()
    );

    // Verify against the software kernel.
    let expect = gemm_naive(&a.clone().into_dense(), &b.clone().into_dense());
    assert!(
        run.sim.output.approx_eq(&expect, 1e-9),
        "accelerator output mismatch"
    );
    println!("\noutput verified against the software kernel ✓");

    // Compare against the fixed-format baseline classes.
    println!("\nnormalized EDP vs this work:");
    for (class, norm) in system.normalized_edp(&w) {
        match norm {
            Some(x) => println!("  {class:<16} {x:>8.2}x"),
            None => println!("  {class:<16} (cannot run)"),
        }
    }
}

//! The §VII-D case study: ResNet-50/CIFAR-10 convolution layers under
//! three pruning strategies, evaluated as im2col GEMMs on the flexible
//! accelerator.
//!
//! ```sh
//! cargo run --release --example cnn_pruning
//! ```

use sparseflex::system::{layer_edp, FlexSystem};
use sparseflex::workloads::{PruningStrategy, RESNET_LAYERS};

fn main() {
    let system = FlexSystem::default();
    let batch = 8; // the paper uses 64; smaller keeps the demo snappy

    for strategy in PruningStrategy::all() {
        println!("\n=== pruning strategy: {} ===", strategy.name());
        println!(
            "{:<6} {:>10} {:>8} {:>8} {:>12} {:>14} {:>10}",
            "layer", "M", "K", "N", "act dens", "weight dens", "EDP (J*s)"
        );
        let mut tpu_ratio = Vec::new();
        for layer in &RESNET_LAYERS {
            let r = layer_edp(
                &system,
                layer.id,
                layer.gemm_dims(batch),
                layer.act_density(strategy),
                layer.weight_density(strategy),
            );
            let (m, k, n) = r.gemm_dims;
            println!(
                "{:<6} {:>10} {:>8} {:>8} {:>12.3} {:>14.3} {:>10.3e}",
                layer.id,
                m,
                k,
                n,
                layer.act_density(strategy),
                layer.weight_density(strategy),
                r.this_work
            );
            if let Some((_, Some(tpu))) = r.baselines.iter().find(|(n, _)| *n == "Fix_Fix_None") {
                tpu_ratio.push(tpu / r.this_work);
            }
        }
        let avg = tpu_ratio.iter().sum::<f64>() / tpu_ratio.len() as f64;
        println!("dense-only TPU baseline averages {avg:.2}x our EDP under this strategy");
    }
    println!("\nNote how layers 7-8 under 70% global pruning benefit most: their");
    println!("98%+ weight sparsity rewards the CSC weight ACF the flexible PEs enable.");
}

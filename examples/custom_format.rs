//! Define a compression format that is **not** in the paper's list —
//! bitmask rows × run-length columns — from per-rank level descriptors,
//! size it with the generic level model, and run it through SpMM via the
//! fiber-stream path and through the full `FlexSystem` accelerator
//! pipeline, verified against the dense reference.
//!
//! ```sh
//! cargo run --release --example custom_format
//! ```

use sparseflex::formats::descriptor::{Level, RankOrder, ValuesLayout};
use sparseflex::formats::size_model::{descriptor_matrix_bits, MatrixStructure};
use sparseflex::formats::{CustomMatrix, DataType, FormatDescriptor, MatrixFormat, SparseMatrix};
use sparseflex::kernels::gemm::gemm_naive;
use sparseflex::kernels::spmm_from_stream;
use sparseflex::mint::required_blocks;
use sparseflex::system::FlexSystem;
use sparseflex::workloads::synth::random_matrix;

fn main() {
    // A block-of-empty-rows pattern: pruned attention heads leave whole
    // rows empty — exactly what a per-row presence bitmask exploits and
    // a whole-matrix ZVC bitmask cannot.
    let (rows, cols) = (256, 512);
    let a = random_matrix(rows / 4, cols, 2_000, 7); // nonzeros in the top quarter
    let a = {
        let trips: Vec<(usize, usize, f64)> = a.iter().collect();
        sparseflex::formats::CooMatrix::from_triplets(rows, cols, trips).unwrap()
    };
    let b = random_matrix(cols, 64, cols * 64, 8); // dense factor

    // ---- 1. Compose the format from per-rank levels -------------------
    let custom = FormatDescriptor::new(
        RankOrder::RowMajor,
        vec![Level::Bitmask, Level::RunLength { run_bits: 4 }],
        ValuesLayout::Contiguous,
    );
    println!("descriptor     : {custom}  (preset name: none)");
    assert_eq!(custom.to_matrix_format(), None);

    // ---- 2. Size it with the generic level model ----------------------
    let s = MatrixStructure::analytic(rows, cols, a.nnz());
    let bd = descriptor_matrix_bits(&custom, &s, DataType::Fp32).unwrap();
    println!(
        "level charges  : outer mask {} b, inner ptr {} b + runs {} b, values {} b",
        bd.ranks[0].mask_bits, bd.ranks[1].ptr_bits, bd.ranks[1].run_bits, bd.values_bits
    );
    for fmt in [MatrixFormat::Zvc, MatrixFormat::Csr, MatrixFormat::Dense] {
        let preset = sparseflex::formats::size_model::matrix_storage_bits(
            &fmt,
            rows,
            cols,
            a.nnz(),
            DataType::Fp32,
        );
        println!(
            "  vs {fmt:<5}     : {preset} bits (custom: {} bits)",
            bd.total()
        );
    }

    // ---- 3. What would MINT need to decode it to CSR? -----------------
    println!(
        "MINT blocks    : {:?}",
        required_blocks(&custom, &FormatDescriptor::csr())
    );

    // ---- 4. Encode and run SpMM via the fiber-stream path -------------
    let enc = CustomMatrix::encode(&a, &custom).unwrap();
    println!(
        "encoded        : {} nnz in {} bits (exact)",
        enc.nnz(),
        enc.storage_bits(DataType::Fp32)
    );
    let b_dense = b.clone().into_dense();
    let via_stream = spmm_from_stream(a.rows(), a.cols(), &enc, &b_dense).unwrap();
    let reference = gemm_naive(&a.clone().into_dense(), &b_dense);
    assert!(via_stream.approx_eq(&reference, 1e-9));
    println!("fiber-stream SpMM matches the dense reference");

    // ---- 5. End-to-end through the accelerator ------------------------
    let mut sys = FlexSystem::default();
    sys.sage.accel.num_pes = 64;
    sys.sage.accel.pe_buffer_elems = 256;
    let run = sys
        .run_custom_mcf(&a, &b, &custom, &FormatDescriptor::dense())
        .unwrap();
    assert!(run.output().approx_eq(&reference, 1e-9));
    println!(
        "accelerator run: {} compute cycles, MCF_A {} bits, output verified",
        run.sim.cycles.total(),
        run.mcf_a_bits
    );
}

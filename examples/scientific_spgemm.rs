//! Scientific-computing workloads: run SAGE over the (synthetic stand-ins
//! for the) SuiteSparse matrices of Table III and print the chosen
//! formats plus the EDP advantage over each fixed-format accelerator.
//!
//! ```sh
//! cargo run --release --example scientific_spgemm
//! ```

use sparseflex::formats::DataType;
use sparseflex::sage::SageWorkload;
use sparseflex::system::FlexSystem;
use sparseflex::workloads::{WorkloadShape, TABLE_III};

fn main() {
    let system = FlexSystem::default();
    println!(
        "{:<14} {:>12} {:>10} {:<34} {:>12}",
        "workload", "density", "kernel", "SAGE choice", "worst base"
    );
    for spec in TABLE_III.iter().filter(|s| !s.is_tensor()) {
        let WorkloadShape::Matrix { rows: m, cols: k } = spec.shape else {
            continue;
        };
        let (fr, fc) = spec.factor_dims();
        let nnz_b = ((fr as f64 * fc as f64) * spec.density()).round().max(1.0) as u64;
        let w = SageWorkload::spgemm(m, k, fc, spec.nnz as u64, nnz_b, DataType::Fp32);
        let plan = system.plan(&w);
        let worst = system
            .normalized_edp(&w)
            .into_iter()
            .filter_map(|(_, n)| n)
            .fold(1.0f64, f64::max);
        println!(
            "{:<14} {:>11.4}% {:>10} {:<34} {:>11.1}x",
            spec.name,
            100.0 * spec.density(),
            "SpGEMM",
            plan.evaluation.choice.to_string(),
            worst
        );
    }
    println!("\n'worst base' is the highest EDP any Table II fixed-format class pays,");
    println!("normalized to the flexible system — the Fig. 13 message in one column.");
}

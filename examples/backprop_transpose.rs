//! The §III-C use case: "during backpropagation in DL training,
//! converting CSR to CSC (or vice versa) is necessary since the weight
//! matrix gets transposed before running GEMM."
//!
//! This example runs a forward SpMM with CSR weights, then obtains the
//! transposed weights for the backward pass two ways — software
//! conversion vs MINT's hardware pipeline — and shows they agree while
//! MINT's cycle cost hides under the operand fetch time.
//!
//! ```sh
//! cargo run --release --example backprop_transpose
//! ```

use sparseflex::accel::DramModel;
use sparseflex::formats::size_model::matrix_storage_bits;
use sparseflex::formats::{convert, CsrMatrix, DataType, MatrixData, MatrixFormat, SparseMatrix};
use sparseflex::kernels::spmm_sparse_b;
use sparseflex::mint::ConversionEngine;
use sparseflex::workloads::synth::{random_dense_matrix, random_matrix};

fn main() {
    // A pruned weight matrix W (70% sparse) and an activation batch X.
    let (k, n) = (512, 256);
    let w_coo = random_matrix(k, n, (k * n) * 3 / 10, 1);
    let w_csr = CsrMatrix::from_coo(&w_coo);
    let x = random_dense_matrix(64, k, 2);
    println!(
        "weights: {k}x{n}, {} nnz ({:.0}% sparse)",
        w_csr.nnz(),
        100.0 * (1.0 - w_csr.density())
    );

    // Forward pass: Y = X * W. (Stationary W in CSC = Fig. 6b's layout;
    // the format-generic entry point dispatches to that fast path.)
    let w_csc_sw = convert::csr_to_csc(&w_csr);
    let y = spmm_sparse_b(&x, &MatrixData::Csc(w_csc_sw.clone())).expect("K dims agree");
    println!("forward:  Y = X*W -> {}x{}", y.rows(), y.cols());

    // Backward pass needs W^T: convert CSR -> CSC through MINT. A CSC
    // encoding of W *is* the CSR encoding of W^T (shared arrays), so the
    // conversion is exactly the transpose the backward GEMM wants.
    let engine = ConversionEngine::default();
    let (w_csc_hw, report) = engine.csr_to_csc(&w_csr);
    assert_eq!(
        w_csc_hw, w_csc_sw,
        "hardware and software conversions must agree"
    );
    // (The seed version multiplied W^T by a gradient with mismatched inner
    // dims — a latent panic the typed KernelError now surfaces; the
    // backward GEMM is dX = dY * W^T with dY shaped like Y.)
    let wt_csr = MatrixData::Csr(w_csc_hw.transpose_as_csr());
    let dy = random_dense_matrix(64, n, 3); // upstream gradient dL/dY
    let dx = spmm_sparse_b(&dy, &wt_csr).expect("dY cols match W^T rows");
    println!("backward: dX = dY*W^T -> {}x{}", dx.rows(), dx.cols());

    // MINT's conversion hides behind the fetch: compare cycle costs.
    let dram = DramModel::paper();
    let fetch = dram.transfer_cycles(matrix_storage_bits(
        &MatrixFormat::Csr,
        k,
        n,
        w_csr.nnz(),
        DataType::Fp32,
    ));
    println!(
        "\nMINT CSR->CSC: {} pipelined cycles vs {} cycles just to fetch W from DRAM",
        report.pipelined_cycles(),
        fetch
    );
    println!(
        "=> conversion {} the fetch window ({} busy blocks, {:.2e} J)",
        if report.pipelined_cycles() <= fetch as u64 {
            "fits inside"
        } else {
            "exceeds"
        },
        report.block_cycles.len(),
        report.total_energy()
    );
}

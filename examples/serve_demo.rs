//! Serving-layer tour: three tenants share one `FlexService` — jobs
//! travel as binary wire frames through admission control into the
//! weighted-fair scheduler, execute on a stolen-work thread pool over a
//! sharded plan cache, and come back as result frames.
//!
//! Run with `cargo run --release --example serve_demo`.

use sparseflex::formats::{DataType, MatrixData, MatrixFormat, SparseMatrix};
use sparseflex::serve::{wire, FlexService, Priority, ServeConfig, WireJob};
use sparseflex::system::FlexSystem;
use sparseflex::workloads::synth::random_matrix;

fn main() {
    let mut system = FlexSystem::default();
    system.sage.accel.num_pes = 8;
    system.sage.accel.pe_buffer_elems = 64;

    let service = FlexService::start(
        system,
        ServeConfig {
            workers: 4,
            cache_shards: 8,
            ..ServeConfig::default()
        },
    )
    .expect("service starts");
    // Tenant 3 pays for 4x the share of tenant 1.
    service.register_tenant(1, 1);
    service.register_tenant(2, 2);
    service.register_tenant(3, 4);

    println!("submitting 60 jobs from 3 tenants as wire frames...");
    let tickets: Vec<_> = (0..60)
        .map(|i| {
            let shape = [(16usize, 20usize, 12usize), (24, 16, 20), (12, 28, 16)][i % 3];
            let a = random_matrix(shape.0, shape.1, 80, 50 + (i % 3) as u64);
            let b = random_matrix(shape.1, shape.2, 90, 90 + (i % 3) as u64);
            let job = WireJob {
                tenant: (i % 3) as u32 + 1,
                priority: if i % 5 == 0 {
                    Priority::High
                } else {
                    Priority::Normal
                },
                dtype: DataType::Fp32,
                a: MatrixData::encode(&a, &MatrixFormat::Csr).unwrap(),
                b: MatrixData::encode(&b, &MatrixFormat::Zvc).unwrap(),
            };
            let frame = wire::encode_job(&job).unwrap();
            service.submit_frame(&frame).unwrap()
        })
        .collect();

    let mut stolen = 0u64;
    for ticket in tickets {
        let outcome = ticket.wait().expect("job completes");
        let result = wire::decode_result(&outcome.result_frame).unwrap();
        assert!(result.output.rows() > 0);
        stolen += u64::from(outcome.stolen);
    }

    let stats = service.stats();
    println!(
        "\n{} jobs completed on {} workers ({} stolen, {} rejected)",
        stats.jobs_completed, stats.workers, stolen, stats.jobs_rejected
    );
    println!(
        "plan cache: {} hits / {} misses across {} shards ({} contended acquisitions)",
        stats.cache.hits,
        stats.cache.misses,
        stats.cache_shards.len(),
        stats.cache_contended
    );
    println!("\ntenant  weight  submitted  completed  rejected  queue-wait (Mcycles)");
    for t in &stats.tenants {
        println!(
            "{:>6}  {:>6}  {:>9}  {:>9}  {:>8}  {:>20.2}",
            t.tenant,
            t.weight,
            t.submitted,
            t.completed,
            t.rejected,
            t.queue_wait_cycles as f64 / 1e6
        );
    }
}

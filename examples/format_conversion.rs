//! MINT in isolation: drive the four Fig. 8 reference conversions through
//! the building-block engine and print the per-block busy cycles.
//!
//! ```sh
//! cargo run --release --example format_conversion
//! ```

use sparseflex::formats::{CsrMatrix, RlcMatrix, SparseMatrix, SparseTensor3};
use sparseflex::mint::{ConversionEngine, MintVariant};
use sparseflex::workloads::synth::{random_matrix, random_tensor3};

fn main() {
    let engine = ConversionEngine::default();
    let coo = random_matrix(512, 512, 10_000, 3);
    let csr = CsrMatrix::from_coo(&coo);

    println!("operand: 512x512, nnz = {}", csr.nnz());

    // Fig. 8c: CSR -> CSC.
    let (_, rep) = engine.csr_to_csc(&csr);
    print_report("CSR -> CSC (Fig. 8c)", &rep);

    // Fig. 8d: RLC -> COO.
    let rlc = RlcMatrix::from_coo(&coo, 4);
    let (_, rep) = engine.rlc_to_coo(&rlc);
    print_report("RLC -> COO (Fig. 8d)", &rep);

    // Fig. 8e: CSR -> BSR (4x4 blocks).
    let (bsr, rep) = engine.csr_to_bsr(&csr, 4, 4).unwrap();
    print_report("CSR -> BSR 4x4 (Fig. 8e)", &rep);
    println!(
        "    ({} blocks, {:.1}% padding)",
        bsr.num_blocks(),
        100.0 * bsr.padding_ratio()
    );

    // Fig. 8f: Dense tensor -> CSF.
    let tensor = random_tensor3(32, 32, 32, 2_000, 5);
    let dense = tensor.clone().into_dense();
    let (csf, rep) = engine.dense_to_csf(&dense);
    print_report("Dense -> CSF (Fig. 8f)", &rep);
    println!(
        "    ({} slices, {} fibers, {} nnz)",
        csf.num_slices(),
        csf.num_fibers(),
        csf.nnz()
    );

    // Area story (SV-A / SVII-B).
    println!("\nMINT variants (28nm):");
    for v in MintVariant::all() {
        println!(
            "  {:<8} {:.2} mm2  {:.0} mW",
            v.name(),
            v.area_mm2(),
            1000.0 * v.power_w()
        );
    }
}

fn print_report(name: &str, rep: &sparseflex::mint::ConversionReport) {
    println!(
        "\n{name}: {} cycles pipelined ({} serialized), {:.2e} J",
        rep.pipelined_cycles(),
        rep.serialized_cycles(),
        rep.total_energy()
    );
    for (kind, cycles) in &rep.block_cycles {
        println!("    {:<16} {:>8} busy cycles", kind.name(), cycles);
    }
}

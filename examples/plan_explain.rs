//! Plan explain: show the planner's full pre-execution decision record
//! for two opposite sparsity regimes — a dense-regime workload (SAGE
//! picks dense-style compute) and a hyper-sparse one (compressed
//! streaming wins) — then execute each plan and compare the predicted
//! cycles against what the cycle-accurate simulator measured.
//!
//! ```sh
//! cargo run --release --example plan_explain
//! ```

use sparseflex::formats::{DataType, SparseMatrix};
use sparseflex::sage::SageWorkload;
use sparseflex::system::{FlexSystem, PlanDiscipline};
use sparseflex::workloads::synth::random_matrix;

fn explain_and_run(sys: &FlexSystem, label: &str, m: usize, k: usize, n: usize, nnz: usize) {
    let a = random_matrix(m, k, nnz, 1);
    let b = random_matrix(k, n, nnz / 2 + 1, 2);
    let w = SageWorkload::spgemm(
        a.rows(),
        a.cols(),
        b.cols(),
        a.nnz() as u64,
        b.nnz() as u64,
        DataType::Fp32,
    );
    println!(
        "== {label}: {m}x{k} by {k}x{n}, A {:.2}% dense ==\n",
        100.0 * a.density()
    );

    // Plan without executing: the whole decision is inspectable first.
    let plan = sys
        .planner
        .plan_job(&sys.sage, &a, &b, &w, PlanDiscipline::Pipelined)
        .expect("workload plans");
    println!("{}", plan.explain());

    // Execute the same plan and validate the prediction.
    let run = sys
        .planner
        .execute_plan(&sys.sage, &plan, &a, &b)
        .expect("plan executes");
    println!(
        "executed    : {} tiles, measured {} overlapped / {} serial cycles \
         (predicted compute {} vs measured {})",
        run.tiles.len(),
        run.overlapped_cycles(),
        run.serial_cycles(),
        run.trace.predicted_compute_cycles(),
        run.trace.measured_compute_cycles(),
    );

    // Replan the same shape: the MCF x ACF search is skipped — the
    // evaluation comes out of the bounded LRU plan cache.
    let replanned = sys
        .planner
        .plan_job(&sys.sage, &a, &b, &w, PlanDiscipline::Pipelined)
        .expect("workload replans");
    println!(
        "replanned   : from_cache = {} (no repeated SAGE search)\n",
        replanned.from_cache
    );
}

fn main() {
    let mut sys = FlexSystem::default();
    // Walkthrough-scale array so the workloads span several tiles.
    sys.sage.accel.num_pes = 8;
    sys.sage.accel.pe_buffer_elems = 64;

    // Dense regime (journals-class: ~78% dense).
    explain_and_run(&sys, "dense regime", 48, 48, 56, 1_800);
    // Hyper-sparse regime (m3plates-class: ~0.01% dense, scaled).
    explain_and_run(&sys, "hyper-sparse regime", 120, 120, 96, 150);

    println!(
        "plan cache  : {} shapes cached, {} hits / {} misses",
        sys.planner.cache.len(),
        sys.planner.cache.hits(),
        sys.planner.cache.misses()
    );

    // The calibration loop: the two runs above already fed their
    // predicted-vs-measured traces to the planner's calibrator. Refit
    // the stats model's coefficients and replan the dense-regime shape
    // — the stale cache row is invalidated (the plan is searched, not
    // hit) and the new prediction is scaled by the fitted coefficients.
    println!("\n== calibration: before vs after one refit ==\n");
    let a = random_matrix(48, 48, 1_800, 1);
    let b = random_matrix(48, 56, 901, 2);
    let w = SageWorkload::spgemm(48, 48, 56, a.nnz() as u64, b.nnz() as u64, DataType::Fp32);
    let before = sys
        .planner
        .plan_job(&sys.sage, &a, &b, &w, PlanDiscipline::Pipelined)
        .expect("workload plans");
    let before_run = sys
        .planner
        .execute_plan(&sys.sage, &before, &a, &b)
        .expect("plan executes");
    println!("{}", before.explain());
    println!(
        "before      : mean cycle error {:.4}\n",
        before_run.trace.mean_cycle_error()
    );

    let coeffs = sys.planner.calibrator.recalibrate();
    println!(
        "recalibrate : generation {} — conv x{:.3}, compute(ws) x{:.3}, compute(spgemm) x{:.3}",
        sys.planner.calibrator.generation(),
        coeffs.conv,
        coeffs.compute_ws,
        coeffs.compute_spgemm
    );

    let after = sys
        .planner
        .plan_job(&sys.sage, &a, &b, &w, PlanDiscipline::Pipelined)
        .expect("workload replans");
    let after_run = sys
        .planner
        .execute_plan(&sys.sage, &after, &a, &b)
        .expect("plan executes");
    println!("{}", after.explain());
    println!(
        "after       : mean cycle error {:.4} (was {:.4})",
        after_run.trace.mean_cycle_error(),
        before_run.trace.mean_cycle_error()
    );
}

//! Tensor-decomposition building blocks: SpTTM and MTTKRP on a synthetic
//! sparse tensor, with SAGE choosing the tensor formats (the Table III
//! tensor rows in miniature).
//!
//! ```sh
//! cargo run --release --example tensor_decomposition
//! ```

use sparseflex::formats::{CsfTensor, DataType, SparseTensor3, TensorData};
use sparseflex::kernels::{mttkrp, spttm};
use sparseflex::sage::{Sage, TensorWorkload};
use sparseflex::workloads::synth::{random_dense_matrix, random_tensor3};

fn main() {
    // A Crime-shaped (but miniature) third-order tensor.
    let (x, y, z) = (620, 24, 250);
    let tensor = random_tensor3(x, y, z, 50_000, 1);
    let csf = CsfTensor::from_coo(&tensor);
    println!(
        "tensor {}x{}x{}: nnz = {} ({:.3}% dense), {} fibers in CSF",
        x,
        y,
        z,
        tensor.nnz(),
        100.0 * tensor.density(),
        csf.num_fibers()
    );

    // SpTTM: contract the z mode with a dense factor. One format-generic
    // entry point serves both encodings — dispatch picks the COO Alg. 1
    // stream or the CSF fiber walk from the operand itself.
    let t_coo = TensorData::Coo(tensor.clone());
    let t_csf = TensorData::Csf(csf);
    let rank = 16;
    let factor = random_dense_matrix(z, rank, 2);
    let t0 = std::time::Instant::now();
    let y_coo = spttm(&t_coo, &factor).expect("contraction dims agree");
    let coo_time = t0.elapsed();
    let t0 = std::time::Instant::now();
    let y_csf = spttm(&t_csf, &factor).expect("contraction dims agree");
    let csf_time = t0.elapsed();
    assert_eq!(y_coo, y_csf);
    println!("\nSpTTM  (rank {rank}): COO {coo_time:?} vs CSF {csf_time:?} — identical outputs");

    // MTTKRP with two dense factors.
    let b = random_dense_matrix(y, rank, 3);
    let c = random_dense_matrix(z, rank, 4);
    let o_coo = mttkrp(&t_coo, &b, &c).expect("factor dims agree");
    let o_csf = mttkrp(&t_csf, &b, &c).expect("factor dims agree");
    assert!(o_coo.approx_eq(&o_csf, 1e-9));
    println!("MTTKRP (rank {rank}): COO and CSF paths agree");

    // What would SAGE pick for the full-size Crime tensor?
    let sage = Sage::default();
    for (name, dims, nnz) in [
        ("Crime", (6_200usize, 24usize, 2_500usize), 5_200_000u64),
        ("Uber", (4_400, 1_100, 1_700), 3_300_000),
        ("BrainQ", (60, 70_000, 9), 11_000_000),
    ] {
        let w = TensorWorkload {
            mttkrp: false,
            dims,
            nnz,
            rank: (dims.0 / 2).max(1),
            dtype: DataType::Fp32,
        };
        let rec = sage.recommend_tensor(&w);
        println!(
            "SAGE on {name:<7} ({:.4}% dense): {}",
            100.0 * w.density(),
            rec.choice
        );
    }
}

//! End-to-end properties of the serving layer: a ≥1k-job mixed-tenant
//! soak through the wire format whose every result is bit-for-bit equal
//! to the synchronous `run_batch` answer, weighted-fair scheduling that
//! never starves a tenant under a saturating competitor, and typed
//! admission-control rejections — all through the public service API.

use sparseflex::formats::{DataType, MatrixData, MatrixFormat, SparseMatrix};
use sparseflex::serve::{
    wire, FlexService, Priority, ServeConfig, ServeError, SubmitError, WireJob,
};
use sparseflex::system::{BatchJob, FlexSystem};
use sparseflex::workloads::synth::random_matrix;

/// The system configuration used on both sides of the soak comparison.
fn soak_system() -> FlexSystem {
    let mut sys = FlexSystem::default();
    sys.sage.accel.num_pes = 8;
    sys.sage.accel.pe_buffer_elems = 64;
    sys
}

/// A deterministic mixed-tenant job stream: `count` jobs over a dozen
/// shapes, four tenants, all three priorities, two wire formats.
fn soak_jobs(count: usize) -> Vec<WireJob> {
    let shapes = [
        (8usize, 10usize, 6usize, 24usize, 20usize),
        (12, 8, 10, 30, 26),
        (10, 14, 8, 34, 40),
        (14, 10, 12, 44, 30),
        (9, 9, 9, 20, 20),
        (16, 8, 8, 36, 18),
        (8, 16, 10, 28, 48),
        (11, 12, 13, 32, 38),
        (13, 7, 9, 26, 16),
        (7, 13, 11, 22, 42),
        (10, 10, 10, 30, 30),
        (15, 11, 7, 48, 24),
    ];
    (0..count)
        .map(|i| {
            let (m, k, n, nnz_a, nnz_b) = shapes[i % shapes.len()];
            let a = random_matrix(m, k, nnz_a, 10_000 + (i % shapes.len()) as u64);
            let b = random_matrix(k, n, nnz_b, 20_000 + (i % shapes.len()) as u64);
            WireJob {
                tenant: (i % 4) as u32 + 1,
                priority: match i % 3 {
                    0 => Priority::High,
                    1 => Priority::Normal,
                    _ => Priority::Low,
                },
                dtype: if i % 2 == 0 {
                    DataType::Fp32
                } else {
                    DataType::Int8
                },
                a: MatrixData::encode(&a, &MatrixFormat::Csr).unwrap(),
                b: MatrixData::encode(&b, &MatrixFormat::Zvc).unwrap(),
            }
        })
        .collect()
}

#[test]
fn soak_1k_wire_jobs_match_synchronous_run_batch_bit_for_bit() {
    let jobs = soak_jobs(1_008);

    // Synchronous reference: the same jobs through `run_batch` on an
    // identically-configured system.
    let reference = soak_system().run_batch(
        &jobs
            .iter()
            .map(|j| BatchJob::spgemm(j.a.to_coo(), j.b.to_coo(), j.dtype))
            .collect::<Vec<_>>(),
    );

    // Service side: every job travels as a wire frame.
    let service = FlexService::start(
        soak_system(),
        ServeConfig {
            workers: 4,
            queue_capacity: jobs.len() + 8,
            tenant_inflight_cap: jobs.len() + 8,
            ..ServeConfig::default()
        },
    )
    .expect("service starts");
    let tickets: Vec<_> = jobs
        .iter()
        .map(|j| {
            let frame = wire::encode_job(j).unwrap();
            service.submit_frame(&frame).unwrap()
        })
        .collect();

    for (i, ticket) in tickets.into_iter().enumerate() {
        let outcome = ticket.wait().expect("soak job completes");
        let served = wire::decode_result(&outcome.result_frame).unwrap();
        let expected = reference.results[i]
            .as_ref()
            .expect("reference job succeeds");
        // Bit-for-bit: compare IEEE-754 bit patterns, not float equality.
        let served_bits: Vec<u64> = served.output.data().iter().map(|v| v.to_bits()).collect();
        let expected_bits: Vec<u64> = expected.output.data().iter().map(|v| v.to_bits()).collect();
        assert_eq!(served.output.rows(), expected.output.rows(), "job {i}");
        assert_eq!(served.output.cols(), expected.output.cols(), "job {i}");
        assert_eq!(
            served_bits, expected_bits,
            "job {i} diverged from run_batch"
        );
    }

    let stats = service.stats();
    assert_eq!(stats.jobs_completed, jobs.len() as u64);
    assert_eq!(stats.jobs_rejected, 0);
    assert_eq!(
        stats.cache.hits + stats.cache.misses,
        jobs.len() as u64,
        "every job plans exactly once"
    );
    let by_tenant: u64 = stats.tenants.iter().map(|t| t.completed).sum();
    assert_eq!(by_tenant, jobs.len() as u64);
    for t in &stats.tenants {
        assert_eq!(t.submitted, t.completed, "tenant {} lost jobs", t.tenant);
        assert_eq!(t.rejected, 0);
    }
}

#[test]
fn no_tenant_starves_under_a_saturating_competitor() {
    let service = FlexService::start(
        soak_system(),
        ServeConfig {
            workers: 1,
            dispatch_batch: 1,
            queue_capacity: 256,
            tenant_inflight_cap: 256,
            start_paused: true,
            ..ServeConfig::default()
        },
    )
    .expect("service starts");
    service.register_tenant(1, 1);
    service.register_tenant(2, 1);

    let make = |tenant: u32, seed: u64| {
        let a = random_matrix(8, 10, 24, 100 + seed);
        let b = random_matrix(10, 6, 18, 200 + seed);
        WireJob {
            tenant,
            priority: Priority::Normal,
            dtype: DataType::Fp32,
            a: MatrixData::encode(&a, &MatrixFormat::Csr).unwrap(),
            b: MatrixData::encode(&b, &MatrixFormat::Coo).unwrap(),
        }
    };

    // Tenant 1 saturates the queue before tenant 2 shows up at all.
    let heavy: Vec<_> = (0..120)
        .map(|i| service.submit(make(1, i)).unwrap())
        .collect();
    let light: Vec<_> = (0..10)
        .map(|i| service.submit(make(2, 1_000 + i)).unwrap())
        .collect();
    service.resume();

    let light_seqs: Vec<u64> = light
        .into_iter()
        .map(|t| t.wait().expect("light job completes").dispatch_seq)
        .collect();
    let heavy_seqs: Vec<u64> = heavy
        .into_iter()
        .map(|t| t.wait().expect("heavy job completes").dispatch_seq)
        .collect();

    // Equal weights ⇒ stride scheduling alternates: all 10 light jobs
    // dispatch within the first ~20 slots even though 120 heavy jobs
    // were queued first. Starvation would push them past seq 120.
    let light_max = *light_seqs.iter().max().unwrap();
    assert!(
        light_max <= 48,
        "light tenant starved: last dispatch at seq {light_max}"
    );
    let light_mean = light_seqs.iter().sum::<u64>() as f64 / light_seqs.len() as f64;
    let heavy_mean = heavy_seqs.iter().sum::<u64>() as f64 / heavy_seqs.len() as f64;
    assert!(
        light_mean < heavy_mean,
        "fair interleaving should front-load the small tenant \
         (light mean {light_mean:.1}, heavy mean {heavy_mean:.1})"
    );
}

#[test]
fn admission_control_rejects_with_typed_errors_over_the_wire() {
    let service = FlexService::start(
        soak_system(),
        ServeConfig {
            workers: 1,
            queue_capacity: 3,
            tenant_inflight_cap: 1,
            start_paused: true,
            ..ServeConfig::default()
        },
    )
    .expect("service starts");
    let job = |tenant: u32| {
        let a = random_matrix(6, 8, 14, 1);
        let b = random_matrix(8, 5, 12, 2);
        wire::encode_job(&WireJob {
            tenant,
            priority: Priority::Normal,
            dtype: DataType::Fp32,
            a: MatrixData::encode(&a, &MatrixFormat::Coo).unwrap(),
            b: MatrixData::encode(&b, &MatrixFormat::Coo).unwrap(),
        })
        .unwrap()
    };

    let _t1 = service.submit_frame(&job(1)).unwrap();
    // Tenant 1 is at its in-flight cap: typed per-tenant rejection.
    match service.submit_frame(&job(1)) {
        Err(SubmitError::TenantBusy { tenant, cap, .. }) => {
            assert_eq!(tenant, 1);
            assert_eq!(cap, 1);
        }
        other => panic!("expected TenantBusy, got {other:?}"),
    }
    // Other tenants fill the bounded queue: typed backpressure.
    let _t2 = service.submit_frame(&job(2)).unwrap();
    let _t3 = service.submit_frame(&job(3)).unwrap();
    match service.submit_frame(&job(4)) {
        Err(SubmitError::QueueFull { capacity }) => assert_eq!(capacity, 3),
        other => panic!("expected QueueFull, got {other:?}"),
    }
    // Garbage frames are wire errors, not panics or silent drops.
    assert!(matches!(
        service.submit_frame(b"not a frame"),
        Err(SubmitError::Wire(_))
    ));

    let stats = service.stats();
    assert_eq!(stats.jobs_rejected, 2);

    // Shutdown resolves the still-queued tickets as typed shutdown
    // errors rather than hanging their waiters.
    service.shutdown();
    assert!(matches!(_t1.wait(), Err(ServeError::Shutdown)));
}

#[test]
fn work_stealing_spreads_a_hoarded_batch() {
    // One worker grabs the whole batch (dispatch_batch > job count) and
    // parks the surplus; idle siblings steal from its deque. Whether a
    // steal lands is a scheduling race on a loaded single-core host —
    // the hoarder can drain its own deque before a sibling runs — so
    // the scenario retries: any run observing a steal proves both the
    // mechanism and its accounting.
    let run_once = || {
        let service = FlexService::start(
            soak_system(),
            ServeConfig {
                workers: 4,
                dispatch_batch: 128,
                queue_capacity: 128,
                tenant_inflight_cap: 128,
                start_paused: true,
                ..ServeConfig::default()
            },
        )
        .expect("service starts");
        let tickets: Vec<_> = (0..64)
            .map(|i| {
                let a = random_matrix(20, 24, 120, 300 + i);
                let b = random_matrix(24, 16, 100, 400 + i);
                service
                    .submit(WireJob {
                        tenant: 1,
                        priority: Priority::Normal,
                        dtype: DataType::Fp32,
                        a: MatrixData::encode(&a, &MatrixFormat::Csr).unwrap(),
                        b: MatrixData::encode(&b, &MatrixFormat::Coo).unwrap(),
                    })
                    .unwrap()
            })
            .collect();
        service.resume();
        let outcomes: Vec<_> = tickets
            .into_iter()
            .map(|t| t.wait().expect("job completes"))
            .collect();
        let stolen = outcomes.iter().filter(|o| o.stolen).count() as u64;
        assert_eq!(
            service.stats().jobs_stolen,
            stolen,
            "per-outcome steal flags must match the service counter"
        );
        stolen
    };
    let stolen = (0..8).map(|_| run_once()).find(|&s| s > 0);
    assert!(
        stolen.is_some(),
        "idle workers never stole from the hoarder in any attempt"
    );
}

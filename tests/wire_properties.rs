//! Property tests on the serving wire format: encode→decode is lossless
//! for every matrix and tensor format in the workspace, job frames
//! round-trip, and hostile bytes (truncation, single-byte garbles, bad
//! counts) are rejected with typed errors — never panics.

use proptest::prelude::*;
use sparseflex::formats::{
    CooMatrix, CooTensor3, DataType, MatrixData, MatrixFormat, TensorData, TensorFormat,
};
use sparseflex::serve::wire;
use sparseflex::serve::{Priority, WireError, WireJob};

/// Strategy: a random sparse matrix up to 20x20.
fn arb_matrix() -> impl Strategy<Value = CooMatrix> {
    (1usize..20, 1usize..20).prop_flat_map(|(r, c)| {
        proptest::collection::vec(
            ((0..r), (0..c), -100i32..100).prop_map(|(i, j, v)| (i, j, v as f64)),
            0..36,
        )
        .prop_map(move |trips| {
            CooMatrix::from_triplets(r, c, trips).expect("in-bounds by construction")
        })
    })
}

/// Strategy: a random sparse 3-tensor up to 8x8x8.
fn arb_tensor() -> impl Strategy<Value = CooTensor3> {
    (1usize..8, 1usize..8, 1usize..8).prop_flat_map(|(x, y, z)| {
        proptest::collection::vec(
            ((0..x), (0..y), (0..z), -50i32..50).prop_map(|(a, b, c, v)| (a, b, c, v as f64)),
            0..24,
        )
        .prop_map(move |quads| {
            CooTensor3::from_quads(x, y, z, quads).expect("in-bounds by construction")
        })
    })
}

fn all_matrix_formats() -> Vec<MatrixFormat> {
    vec![
        MatrixFormat::Dense,
        MatrixFormat::Coo,
        MatrixFormat::Csr,
        MatrixFormat::Csc,
        MatrixFormat::Bsr { br: 2, bc: 3 },
        MatrixFormat::Dia,
        MatrixFormat::Ell,
        MatrixFormat::Rlc { run_bits: 3 },
        MatrixFormat::Zvc,
    ]
}

fn all_tensor_formats() -> Vec<TensorFormat> {
    vec![
        TensorFormat::Dense,
        TensorFormat::Coo,
        TensorFormat::Csf,
        TensorFormat::HiCoo { block: 4 },
        TensorFormat::Rlc { run_bits: 3 },
        TensorFormat::Zvc,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn wire_roundtrips_every_matrix_format(coo in arb_matrix()) {
        for fmt in all_matrix_formats() {
            let data = MatrixData::encode(&coo, &fmt).unwrap();
            let frame = wire::encode_matrix(&data).unwrap();
            let back = wire::decode_matrix(&frame).unwrap();
            prop_assert_eq!(&back, &data, "wire roundtrip failed for {}", fmt);
        }
    }

    #[test]
    fn wire_roundtrips_every_tensor_format(coo in arb_tensor()) {
        for fmt in all_tensor_formats() {
            let data = TensorData::encode(&coo, &fmt).unwrap();
            let frame = wire::encode_tensor(&data).unwrap();
            let back = wire::decode_tensor(&frame).unwrap();
            prop_assert_eq!(&back, &data, "wire roundtrip failed for {}", fmt);
        }
    }

    #[test]
    fn job_frames_roundtrip(a in arb_matrix(), b in arb_matrix(), pri in 0u8..3, dt in 0usize..6) {
        let dtypes = [
            DataType::Int8, DataType::Int16, DataType::Bf16,
            DataType::Int32, DataType::Fp32, DataType::Fp64,
        ];
        let job = WireJob {
            tenant: 7,
            priority: match pri { 0 => Priority::High, 1 => Priority::Normal, _ => Priority::Low },
            dtype: dtypes[dt],
            a: MatrixData::encode(&a, &MatrixFormat::Csr).unwrap(),
            b: MatrixData::encode(&b, &MatrixFormat::Coo).unwrap(),
        };
        let frame = wire::encode_job(&job).unwrap();
        let back = wire::decode_job(&frame).unwrap();
        prop_assert_eq!(back.tenant, job.tenant);
        prop_assert_eq!(back.priority, job.priority);
        prop_assert_eq!(back.dtype, job.dtype);
        prop_assert_eq!(&back.a, &job.a);
        prop_assert_eq!(&back.b, &job.b);
    }

    #[test]
    fn every_truncation_is_a_typed_error(coo in arb_matrix()) {
        let data = MatrixData::encode(&coo, &MatrixFormat::Zvc).unwrap();
        let frame = wire::encode_matrix(&data).unwrap();
        for len in 0..frame.len() {
            // Never panics; always a typed error.
            prop_assert!(wire::decode_matrix(&frame[..len]).is_err());
        }
    }

    #[test]
    fn every_single_byte_garble_is_rejected(coo in arb_matrix(), flip in 1i32..256) {
        let flip = flip as u8;
        let data = MatrixData::encode(&coo, &MatrixFormat::Csr).unwrap();
        let frame = wire::encode_matrix(&data).unwrap();
        for i in 0..frame.len() {
            let mut garbled = frame.clone();
            garbled[i] ^= flip;
            prop_assert!(
                wire::decode_matrix(&garbled).is_err(),
                "garble at byte {} (xor {:#04x}) was accepted",
                i,
                flip
            );
        }
    }

    #[test]
    fn random_bytes_never_panic(raw in proptest::collection::vec(0i32..256, 0..256)) {
        let bytes: Vec<u8> = raw.into_iter().map(|b| b as u8).collect();
        let _ = wire::decode_matrix(&bytes);
        let _ = wire::decode_tensor(&bytes);
        let _ = wire::decode_job(&bytes);
        let _ = wire::decode_result(&bytes);
    }
}

#[test]
fn typed_errors_name_the_failure() {
    let coo = CooMatrix::from_triplets(3, 3, vec![(0, 1, 2.0), (2, 2, -1.0)]).unwrap();
    let data = MatrixData::encode(&coo, &MatrixFormat::Coo).unwrap();
    let frame = wire::encode_matrix(&data).unwrap();

    let mut bad_magic = frame.clone();
    bad_magic[0] = b'X';
    assert!(matches!(
        wire::decode_matrix(&bad_magic),
        Err(WireError::BadMagic)
    ));

    let mut bad_version = frame.clone();
    bad_version[4] = 99;
    assert!(matches!(
        wire::decode_matrix(&bad_version),
        Err(WireError::UnsupportedVersion(99))
    ));

    // A matrix frame is not a tensor frame.
    assert!(matches!(
        wire::decode_tensor(&frame),
        Err(WireError::WrongKind { .. })
    ));

    let mut bad_reserved = frame.clone();
    bad_reserved[6] = 1;
    assert!(matches!(
        wire::decode_matrix(&bad_reserved),
        Err(WireError::ReservedNonZero { .. })
    ));

    let mut trailing = frame.clone();
    trailing.push(0);
    assert!(matches!(
        wire::decode_matrix(&trailing),
        Err(WireError::ChecksumMismatch { .. }) | Err(WireError::TrailingBytes { .. })
    ));
}

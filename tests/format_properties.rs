//! Property tests on the compression formats: every format round-trips
//! arbitrary matrices/tensors, conversion composition is the identity,
//! and the exact size model agrees with the analytic one where it must.

use proptest::prelude::*;
use sparseflex::formats::size_model::{matrix_storage_bits, matrix_storage_bits_exact};
use sparseflex::formats::{
    CooMatrix, CooTensor3, DataType, MatrixData, MatrixFormat, SparseMatrix, SparseTensor3,
    TensorData, TensorFormat,
};

/// Strategy: a random sparse matrix up to 24x24.
fn arb_matrix() -> impl Strategy<Value = CooMatrix> {
    (1usize..24, 1usize..24).prop_flat_map(|(r, c)| {
        proptest::collection::vec(
            ((0..r), (0..c), -100i32..100).prop_map(|(i, j, v)| (i, j, v as f64)),
            0..40,
        )
        .prop_map(move |trips| {
            CooMatrix::from_triplets(r, c, trips).expect("in-bounds by construction")
        })
    })
}

fn arb_tensor() -> impl Strategy<Value = CooTensor3> {
    (1usize..10, 1usize..10, 1usize..10).prop_flat_map(|(x, y, z)| {
        proptest::collection::vec(
            ((0..x), (0..y), (0..z), -50i32..50).prop_map(|(a, b, c, v)| (a, b, c, v as f64)),
            0..30,
        )
        .prop_map(move |quads| {
            CooTensor3::from_quads(x, y, z, quads).expect("in-bounds by construction")
        })
    })
}

fn all_matrix_formats() -> Vec<MatrixFormat> {
    vec![
        MatrixFormat::Dense,
        MatrixFormat::Coo,
        MatrixFormat::Csr,
        MatrixFormat::Csc,
        MatrixFormat::Bsr { br: 2, bc: 3 },
        MatrixFormat::Dia,
        MatrixFormat::Ell,
        MatrixFormat::Rlc { run_bits: 3 },
        MatrixFormat::Zvc,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_format_roundtrips(coo in arb_matrix()) {
        for fmt in all_matrix_formats() {
            let data = MatrixData::encode(&coo, &fmt).unwrap();
            prop_assert_eq!(data.to_coo(), coo.clone(), "roundtrip failed for {}", fmt);
        }
    }

    #[test]
    fn conversion_composition_is_identity(coo in arb_matrix()) {
        // X -> Y -> X preserves the logical matrix for every pair.
        let formats = all_matrix_formats();
        for src in &formats {
            let original = MatrixData::encode(&coo, src).unwrap();
            for dst in &formats {
                let there = original.convert_to(dst).unwrap();
                let back = there.convert_to(src).unwrap();
                prop_assert_eq!(back.to_coo(), coo.clone(), "{} -> {} -> {}", src, dst, src);
            }
        }
    }

    #[test]
    fn random_access_agrees_across_formats(coo in arb_matrix()) {
        let encodings: Vec<MatrixData> = all_matrix_formats()
            .iter()
            .map(|f| MatrixData::encode(&coo, f).unwrap())
            .collect();
        for r in 0..coo.rows() {
            for c in 0..coo.cols() {
                let expect = coo.get(r, c);
                for e in &encodings {
                    prop_assert_eq!(e.get(r, c), expect, "format {} at ({},{})", e.format(), r, c);
                }
            }
        }
    }

    #[test]
    fn exact_size_matches_analytic_for_unstructured(coo in arb_matrix()) {
        for fmt in [MatrixFormat::Dense, MatrixFormat::Coo, MatrixFormat::Csr, MatrixFormat::Csc, MatrixFormat::Zvc] {
            let data = MatrixData::encode(&coo, &fmt).unwrap();
            prop_assert_eq!(
                matrix_storage_bits_exact(&data, DataType::Fp32),
                matrix_storage_bits(&fmt, coo.rows(), coo.cols(), coo.nnz(), DataType::Fp32),
                "size mismatch for {}", fmt
            );
        }
    }

    #[test]
    fn tensor_formats_roundtrip(coo in arb_tensor()) {
        let formats = [
            TensorFormat::Dense,
            TensorFormat::Coo,
            TensorFormat::Csf,
            TensorFormat::HiCoo { block: 4 },
            TensorFormat::Rlc { run_bits: 4 },
            TensorFormat::Zvc,
        ];
        for fmt in formats {
            let data = TensorData::encode(&coo, &fmt).unwrap();
            prop_assert_eq!(data.to_coo(), coo.clone(), "tensor roundtrip failed for {}", fmt);
            prop_assert_eq!(data.nnz(), coo.nnz());
        }
    }

    #[test]
    fn transpose_involution(coo in arb_matrix()) {
        prop_assert_eq!(coo.transpose().transpose(), coo.clone());
        let dense = coo.clone().into_dense();
        prop_assert_eq!(dense.transpose().transpose(), dense);
    }
}

//! Property tests on MINT: the hardware block engine must produce
//! bit-identical results to the software conversions for every format
//! pair, and its metering must behave monotonically.

use proptest::prelude::*;
use sparseflex::formats::{
    convert, CooMatrix, CsrMatrix, MatrixData, MatrixFormat, RlcMatrix, SparseMatrix,
};
use sparseflex::mint::ConversionEngine;

fn arb_matrix() -> impl Strategy<Value = CooMatrix> {
    (1usize..20, 1usize..20).prop_flat_map(|(r, c)| {
        proptest::collection::vec(
            ((0..r), (0..c), 1i32..50).prop_map(|(i, j, v)| (i, j, v as f64)),
            0..50,
        )
        .prop_map(move |t| CooMatrix::from_triplets(r, c, t).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn engine_csr_to_csc_equals_software(coo in arb_matrix()) {
        let engine = ConversionEngine::default();
        let csr = CsrMatrix::from_coo(&coo);
        let (hw, _) = engine.csr_to_csc(&csr);
        prop_assert_eq!(hw, convert::csr_to_csc(&csr));
    }

    #[test]
    fn engine_rlc_to_coo_equals_software(coo in arb_matrix(), run_bits in 2u32..6) {
        let engine = ConversionEngine::default();
        let rlc = RlcMatrix::from_coo(&coo, run_bits);
        let (hw, _) = engine.rlc_to_coo(&rlc);
        prop_assert_eq!(hw, convert::rlc_to_coo(&rlc));
    }

    #[test]
    fn engine_generic_path_preserves_data(coo in arb_matrix()) {
        let engine = ConversionEngine::default();
        for src in MatrixFormat::mcf_set() {
            let data = MatrixData::encode(&coo, &src).unwrap();
            for dst in MatrixFormat::acf_set() {
                let (out, rep) = engine.convert_matrix(&data, &dst).unwrap();
                prop_assert_eq!(out.to_coo(), coo.clone(), "{} -> {}", src, dst);
                if src == dst {
                    prop_assert_eq!(rep.serialized_cycles(), 0);
                }
            }
        }
    }

    #[test]
    fn csr_to_bsr_engine_equals_software(coo in arb_matrix(), br in 1usize..4, bc in 1usize..4) {
        let engine = ConversionEngine::default();
        let csr = CsrMatrix::from_coo(&coo);
        let (hw, _) = engine.csr_to_bsr(&csr, br, bc).unwrap();
        prop_assert_eq!(hw, convert::csr_to_bsr(&csr, br, bc).unwrap());
    }

    #[test]
    fn pipelined_cycles_never_exceed_serialized(coo in arb_matrix()) {
        let engine = ConversionEngine::default();
        let csr = CsrMatrix::from_coo(&coo);
        let (_, rep) = engine.csr_to_csc(&csr);
        prop_assert!(rep.pipelined_cycles() <= rep.serialized_cycles());
        prop_assert!(rep.total_energy() >= 0.0);
    }
}

mod tensor_conversions {
    use proptest::prelude::*;
    use sparseflex::formats::{CooTensor3, SparseTensor3, TensorData, TensorFormat};
    use sparseflex::mint::ConversionEngine;

    fn arb_tensor() -> impl Strategy<Value = CooTensor3> {
        (1usize..8, 1usize..8, 1usize..8).prop_flat_map(|(x, y, z)| {
            proptest::collection::vec(
                ((0..x), (0..y), (0..z), 1i32..20).prop_map(|(a, b, c, v)| (a, b, c, v as f64)),
                0..30,
            )
            .prop_map(move |q| CooTensor3::from_quads(x, y, z, q).unwrap())
        })
    }

    fn tensor_formats() -> Vec<TensorFormat> {
        vec![
            TensorFormat::Dense,
            TensorFormat::Coo,
            TensorFormat::Csf,
            TensorFormat::HiCoo { block: 2 },
            TensorFormat::Rlc { run_bits: 3 },
            TensorFormat::Zvc,
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn engine_tensor_conversions_preserve_data(coo in arb_tensor()) {
            let engine = ConversionEngine::default();
            for src in tensor_formats() {
                let data = TensorData::encode(&coo, &src).unwrap();
                for dst in tensor_formats() {
                    let (out, rep) = engine.convert_tensor(&data, &dst).unwrap();
                    prop_assert_eq!(out.to_coo(), coo.clone(), "{} -> {}", src, dst);
                    if src == dst {
                        prop_assert_eq!(rep.serialized_cycles(), 0);
                    } else {
                        prop_assert!(rep.pipelined_cycles() > 0);
                    }
                }
            }
        }
    }
}

//! Property tests on the software kernels: the format-generic entry points
//! agree with the dense reference, parallel variants agree with sequential
//! ones, and algebraic identities hold.

use proptest::prelude::*;
use sparseflex::formats::{
    CooMatrix, CooTensor3, CsfTensor, CsrMatrix, DenseMatrix, MatrixData, SparseMatrix, TensorData,
};
use sparseflex::kernels::gemm::gemm_naive;
use sparseflex::kernels::{
    gemm, gemm_parallel, mttkrp, spgemm, spgemm_parallel, spmm, spmm_parallel, spmm_sparse_b, spmv,
    spttm,
};

fn arb_sparse(rows: usize, cols: usize, max_nnz: usize) -> impl Strategy<Value = CooMatrix> {
    proptest::collection::vec(
        ((0..rows), (0..cols), -8i32..8).prop_map(|(r, c, v)| (r, c, v as f64)),
        0..max_nnz,
    )
    .prop_map(move |t| CooMatrix::from_triplets(rows, cols, t).unwrap())
}

fn arb_dense(rows: usize, cols: usize) -> impl Strategy<Value = DenseMatrix> {
    proptest::collection::vec(-8i32..8, rows * cols).prop_map(move |v| {
        DenseMatrix::from_vec(rows, cols, v.into_iter().map(|x| x as f64).collect()).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn spmm_variants_agree_with_dense_reference(
        a in arb_sparse(13, 17, 60),
        b in arb_dense(17, 9),
    ) {
        let expect = gemm_naive(&a.clone().into_dense(), &b);
        let coo = MatrixData::Coo(a.clone());
        let csr = MatrixData::Csr(CsrMatrix::from_coo(&a));
        prop_assert_eq!(spmm(&coo, &b).unwrap(), expect.clone());
        prop_assert_eq!(spmm(&csr, &b).unwrap(), expect.clone());
        prop_assert_eq!(spmm_parallel(&csr, &b).unwrap(), expect);
    }

    #[test]
    fn spgemm_agrees_with_dense_reference(
        a in arb_sparse(11, 14, 50),
        b in arb_sparse(14, 10, 50),
    ) {
        let expect = gemm_naive(&a.clone().into_dense(), &b.clone().into_dense());
        let a = MatrixData::Csr(CsrMatrix::from_coo(&a));
        let b = MatrixData::Csr(CsrMatrix::from_coo(&b));
        let o = spgemm(&a, &b).unwrap();
        prop_assert_eq!(o.to_dense(), expect.clone());
        let op = spgemm_parallel(&a, &b).unwrap();
        prop_assert_eq!(op.to_dense(), expect);
    }

    #[test]
    fn dense_csc_spmm_matches(
        a in arb_dense(7, 12),
        b in arb_sparse(12, 8, 40),
    ) {
        let expect = gemm_naive(&a, &b.clone().into_dense());
        let b_csc = MatrixData::encode(&b, &sparseflex::formats::MatrixFormat::Csc).unwrap();
        prop_assert_eq!(spmm_sparse_b(&a, &b_csc).unwrap(), expect);
    }

    #[test]
    fn gemm_blocked_and_parallel_match_naive(
        a in arb_dense(9, 21),
        b in arb_dense(21, 11),
    ) {
        let expect = gemm_naive(&a, &b);
        prop_assert_eq!(gemm(&a, &b), expect.clone());
        prop_assert_eq!(gemm_parallel(&a, &b), expect);
    }

    #[test]
    fn spmv_is_spmm_with_one_column(a in arb_sparse(10, 12, 40), x in proptest::collection::vec(-8i32..8, 12)) {
        let xf: Vec<f64> = x.into_iter().map(|v| v as f64).collect();
        let csr = MatrixData::Csr(CsrMatrix::from_coo(&a));
        let y = spmv(&csr, &xf).unwrap();
        let b = DenseMatrix::from_vec(12, 1, xf).unwrap();
        let o = spmm(&csr, &b).unwrap();
        for (i, yi) in y.iter().enumerate() {
            prop_assert_eq!(*yi, o.get(i, 0));
        }
    }

    #[test]
    fn matmul_distributes_over_addition(
        a1 in arb_sparse(8, 8, 30),
        a2 in arb_sparse(8, 8, 30),
        b in arb_dense(8, 6),
    ) {
        // (A1 + A2) * B == A1*B + A2*B
        let mut sum_triplets: Vec<(usize, usize, f64)> = a1.iter().collect();
        sum_triplets.extend(a2.iter());
        let a_sum = CooMatrix::from_triplets(8, 8, sum_triplets).unwrap();
        let left = spmm(&MatrixData::Coo(a_sum), &b).unwrap();
        let r1 = spmm(&MatrixData::Coo(a1), &b).unwrap();
        let r2 = spmm(&MatrixData::Coo(a2), &b).unwrap();
        for i in 0..8 {
            for j in 0..6 {
                prop_assert!((left.get(i, j) - (r1.get(i, j) + r2.get(i, j))).abs() < 1e-9);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn tensor_kernels_csf_equals_coo(
        quads in proptest::collection::vec(
            ((0usize..6), (0usize..7), (0usize..8), -5i32..5).prop_map(|(x, y, z, v)| (x, y, z, v as f64)),
            0..40,
        ),
        factor in proptest::collection::vec(-5i32..5, 8 * 4),
        b2 in proptest::collection::vec(-5i32..5, 7 * 4),
    ) {
        let t = CooTensor3::from_quads(6, 7, 8, quads).unwrap();
        let coo = TensorData::Coo(t.clone());
        let csf = TensorData::Csf(CsfTensor::from_coo(&t));
        let f = DenseMatrix::from_vec(8, 4, factor.into_iter().map(|v| v as f64).collect()).unwrap();
        prop_assert_eq!(spttm(&coo, &f).unwrap(), spttm(&csf, &f).unwrap());
        let b = DenseMatrix::from_vec(7, 4, b2.into_iter().map(|v| v as f64).collect()).unwrap();
        let o1 = mttkrp(&coo, &b, &f).unwrap();
        let o2 = mttkrp(&csf, &b, &f).unwrap();
        prop_assert!(o1.approx_eq(&o2, 1e-9));
    }
}

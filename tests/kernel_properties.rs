//! Property tests on the software kernels: sparse kernels agree with the
//! dense reference, parallel variants agree with sequential ones, and
//! algebraic identities hold.

use proptest::prelude::*;
use sparseflex::formats::{
    CooMatrix, CooTensor3, CscMatrix, CsfTensor, CsrMatrix, DenseMatrix, SparseMatrix,
};
use sparseflex::kernels::gemm::gemm_naive;
use sparseflex::kernels::{
    gemm, gemm_parallel, mttkrp_coo, mttkrp_csf, spgemm, spgemm_parallel, spmm_coo_dense,
    spmm_csr_dense, spmm_csr_dense_parallel, spmm_dense_csc, spmv, spttm_coo, spttm_csf,
};

fn arb_sparse(rows: usize, cols: usize, max_nnz: usize) -> impl Strategy<Value = CooMatrix> {
    proptest::collection::vec(
        ((0..rows), (0..cols), -8i32..8).prop_map(|(r, c, v)| (r, c, v as f64)),
        0..max_nnz,
    )
    .prop_map(move |t| CooMatrix::from_triplets(rows, cols, t).unwrap())
}

fn arb_dense(rows: usize, cols: usize) -> impl Strategy<Value = DenseMatrix> {
    proptest::collection::vec(-8i32..8, rows * cols).prop_map(move |v| {
        DenseMatrix::from_vec(rows, cols, v.into_iter().map(|x| x as f64).collect()).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn spmm_variants_agree_with_dense_reference(
        a in arb_sparse(13, 17, 60),
        b in arb_dense(17, 9),
    ) {
        let expect = gemm_naive(&a.clone().into_dense(), &b);
        let csr = CsrMatrix::from_coo(&a);
        prop_assert_eq!(spmm_coo_dense(&a, &b), expect.clone());
        prop_assert_eq!(spmm_csr_dense(&csr, &b), expect.clone());
        prop_assert_eq!(spmm_csr_dense_parallel(&csr, &b), expect);
    }

    #[test]
    fn spgemm_agrees_with_dense_reference(
        a in arb_sparse(11, 14, 50),
        b in arb_sparse(14, 10, 50),
    ) {
        let expect = gemm_naive(&a.clone().into_dense(), &b.clone().into_dense());
        let o = spgemm(&CsrMatrix::from_coo(&a), &CsrMatrix::from_coo(&b));
        prop_assert_eq!(o.to_dense(), expect.clone());
        let op = spgemm_parallel(&CsrMatrix::from_coo(&a), &CsrMatrix::from_coo(&b));
        prop_assert_eq!(op.to_dense(), expect);
    }

    #[test]
    fn dense_csc_spmm_matches(
        a in arb_dense(7, 12),
        b in arb_sparse(12, 8, 40),
    ) {
        let expect = gemm_naive(&a, &b.clone().into_dense());
        prop_assert_eq!(spmm_dense_csc(&a, &CscMatrix::from_coo(&b)), expect);
    }

    #[test]
    fn gemm_blocked_and_parallel_match_naive(
        a in arb_dense(9, 21),
        b in arb_dense(21, 11),
    ) {
        let expect = gemm_naive(&a, &b);
        prop_assert_eq!(gemm(&a, &b), expect.clone());
        prop_assert_eq!(gemm_parallel(&a, &b), expect);
    }

    #[test]
    fn spmv_is_spmm_with_one_column(a in arb_sparse(10, 12, 40), x in proptest::collection::vec(-8i32..8, 12)) {
        let xf: Vec<f64> = x.into_iter().map(|v| v as f64).collect();
        let csr = CsrMatrix::from_coo(&a);
        let y = spmv(&csr, &xf);
        let b = DenseMatrix::from_vec(12, 1, xf).unwrap();
        let o = spmm_csr_dense(&csr, &b);
        for (i, yi) in y.iter().enumerate() {
            prop_assert_eq!(*yi, o.get(i, 0));
        }
    }

    #[test]
    fn matmul_distributes_over_addition(
        a1 in arb_sparse(8, 8, 30),
        a2 in arb_sparse(8, 8, 30),
        b in arb_dense(8, 6),
    ) {
        // (A1 + A2) * B == A1*B + A2*B
        let mut sum_triplets: Vec<(usize, usize, f64)> = a1.iter().collect();
        sum_triplets.extend(a2.iter());
        let a_sum = CooMatrix::from_triplets(8, 8, sum_triplets).unwrap();
        let left = spmm_coo_dense(&a_sum, &b);
        let r1 = spmm_coo_dense(&a1, &b);
        let r2 = spmm_coo_dense(&a2, &b);
        for i in 0..8 {
            for j in 0..6 {
                prop_assert!((left.get(i, j) - (r1.get(i, j) + r2.get(i, j))).abs() < 1e-9);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn tensor_kernels_csf_equals_coo(
        quads in proptest::collection::vec(
            ((0usize..6), (0usize..7), (0usize..8), -5i32..5).prop_map(|(x, y, z, v)| (x, y, z, v as f64)),
            0..40,
        ),
        factor in proptest::collection::vec(-5i32..5, 8 * 4),
        b2 in proptest::collection::vec(-5i32..5, 7 * 4),
    ) {
        let t = CooTensor3::from_quads(6, 7, 8, quads).unwrap();
        let csf = CsfTensor::from_coo(&t);
        let f = DenseMatrix::from_vec(8, 4, factor.into_iter().map(|v| v as f64).collect()).unwrap();
        prop_assert_eq!(spttm_coo(&t, &f), spttm_csf(&csf, &f));
        let b = DenseMatrix::from_vec(7, 4, b2.into_iter().map(|v| v as f64).collect()).unwrap();
        let o1 = mttkrp_coo(&t, &b, &f);
        let o2 = mttkrp_csf(&csf, &b, &f);
        prop_assert!(o1.approx_eq(&o2, 1e-9));
    }
}

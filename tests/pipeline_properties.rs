//! Property suite for the tile-grained pipelined runtime: tiled,
//! pipelined and batched execution must be **bit-for-bit** equal to the
//! monolithic `run_functional` path across every matrix format, including
//! operands larger than one scratchpad residency and empty/degenerate
//! tiles.

use proptest::prelude::*;
use sparseflex::formats::{CooMatrix, DataType, MatrixFormat, SparseMatrix};
use sparseflex::kernels::gemm::gemm_naive;
use sparseflex::sage::eval::ConversionMode;
use sparseflex::sage::{FormatChoice, SageWorkload};
use sparseflex::system::{BatchJob, FlexSystem, RunError};

fn small_system() -> FlexSystem {
    let mut sys = FlexSystem::default();
    sys.sage.accel.num_pes = 4;
    sys.sage.accel.pe_buffer_elems = 32;
    sys
}

fn spgemm_workload(a: &CooMatrix, b: &CooMatrix) -> SageWorkload {
    SageWorkload::spgemm(
        a.rows(),
        a.cols(),
        b.cols(),
        a.nnz() as u64,
        b.nnz() as u64,
        DataType::Fp32,
    )
}

fn arb_operands() -> impl Strategy<Value = (CooMatrix, CooMatrix)> {
    (2usize..20, 2usize..24, 2usize..28, 0usize..70, 0usize..90).prop_flat_map(
        |(m, k, n, na, nb)| {
            let a = proptest::collection::vec(
                ((0..m), (0..k), 1i32..9).prop_map(|(r, c, v)| (r, c, v as f64)),
                0..na.max(1) + 1,
            )
            .prop_map(move |t| CooMatrix::from_triplets(m, k, t).unwrap());
            let b = proptest::collection::vec(
                ((0..k), (0..n), 1i32..9).prop_map(|(r, c, v)| (r, c, v as f64)),
                0..nb.max(1) + 1,
            )
            .prop_map(move |t| CooMatrix::from_triplets(k, n, t).unwrap());
            (a, b)
        },
    )
}

/// Every MCF the pipeline must tile without densifying, including the
/// structured extensions.
fn mcf_suite() -> Vec<MatrixFormat> {
    vec![
        MatrixFormat::Dense,
        MatrixFormat::Coo,
        MatrixFormat::Csr,
        MatrixFormat::Csc,
        MatrixFormat::Bsr { br: 2, bc: 2 },
        MatrixFormat::Dia,
        MatrixFormat::Ell,
        MatrixFormat::Rlc { run_bits: 4 },
        MatrixFormat::Zvc,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// SAGE-planned pipelined run == SAGE-planned monolithic run,
    /// bit-for-bit (same plan, same formats, same arithmetic order).
    #[test]
    fn pipelined_equals_monolithic((a, b) in arb_operands()) {
        let sys = small_system();
        let w = spgemm_workload(&a, &b);
        let mono = sys.run_functional(&a, &b, &w).unwrap();
        let piped = sys.run_pipelined(&a, &b, &w).unwrap();
        prop_assert_eq!(
            &piped.output, &mono.sim.output,
            "pipeline diverged under choice {}", piped.evaluation().choice
        );
        // And both match the software oracle.
        let expect = gemm_naive(&a.clone().into_dense(), &b.clone().into_dense());
        prop_assert!(piped.output.approx_eq(&expect, 1e-9));
    }

    /// With the format choice pinned, the pipeline is exact for **every**
    /// MCF (tiles cut through each format's own fiber stream) against the
    /// WS CSR(A)-CSC(B) ACF pair.
    #[test]
    fn every_mcf_tiles_exactly((a, b) in arb_operands()) {
        let sys = small_system();
        let w = spgemm_workload(&a, &b);
        let expect = gemm_naive(&a.clone().into_dense(), &b.clone().into_dense());
        for mcf in mcf_suite() {
            let choice = FormatChoice {
                mcf_a: MatrixFormat::Csr,
                mcf_b: mcf,
                acf_a: MatrixFormat::Csr,
                acf_b: MatrixFormat::Csc,
            };
            let eval = match sys.sage.evaluate(&w, &choice, ConversionMode::Hardware) {
                Ok(e) => e,
                // Structured MCFs can exceed hardware bounds (e.g. DIA
                // diagonal count) — planner-level rejection, not a
                // pipeline property.
                Err(_) => continue,
            };
            let run = sys.run_pipelined_with_evaluation(&a, &b, eval, false).unwrap();
            prop_assert!(
                run.output.approx_eq(&expect, 1e-9),
                "MCF {mcf} diverged"
            );
        }
    }

    /// Batched execution returns each job's pipelined result unchanged,
    /// in submission order.
    #[test]
    fn batch_equals_individual_runs((a, b) in arb_operands(), (a2, b2) in arb_operands()) {
        let sys = small_system();
        let jobs = vec![
            BatchJob::spgemm(a.clone(), b.clone(), DataType::Fp32),
            BatchJob::spgemm(a2.clone(), b2.clone(), DataType::Fp32),
            // Repeat of job 0's shape: must hit the plan cache and still
            // produce identical output.
            BatchJob::spgemm(a.clone(), b.clone(), DataType::Fp32),
        ];
        let batch = sys.run_batch(&jobs);
        prop_assert_eq!(batch.results.len(), 3);
        for (job, res) in jobs.iter().zip(&batch.results) {
            let w = spgemm_workload(&job.a, &job.b);
            let solo = sys.run_pipelined(&job.a, &job.b, &w).unwrap();
            let batched = res.as_ref().unwrap();
            prop_assert_eq!(&batched.output, &solo.output);
        }
        prop_assert!(batch.plan_cache_hits >= 1, "repeated shape must hit the cache");
    }
}

/// An operand whose stationary rows exceed one scratchpad residency: the
/// monolithic path rejects it (typed, recoverable), the pipeline runs it
/// — the acceptance scenario, plus the overlap-beats-serial assertion on
/// a Fig. 12-class workload.
#[test]
fn oversized_operand_runs_and_overlap_beats_serial() {
    let mut sys = FlexSystem::default();
    sys.sage.accel.num_pes = 4;
    // 16-slot PE buffers hold 8 stationary pairs. B: 48 columns, every
    // row stores 48 entries -> 96 slots per row, 6x one PE buffer. A
    // Fig. 12-class mid-density SpGEMM shape.
    sys.sage.accel.pe_buffer_elems = 16;
    let b = CooMatrix::from_triplets(
        12,
        48,
        (0..12)
            .flat_map(|r| (0..48).map(move |c| (r, c, ((r * 7 + c) % 5 + 1) as f64)))
            .collect(),
    )
    .unwrap();
    let a = CooMatrix::from_triplets(
        16,
        12,
        (0..16)
            .flat_map(|r| {
                (0..12)
                    .step_by(2)
                    .map(move |c| (r, c, ((r + c) % 4 + 1) as f64))
            })
            .collect(),
    )
    .unwrap();
    let w = spgemm_workload(&a, &b);
    // B stored in COO, computed in CSR: every stationary tile pays a real
    // MINT conversion for the schedule to hide.
    let choice = FormatChoice {
        mcf_a: MatrixFormat::Csr,
        mcf_b: MatrixFormat::Coo,
        acf_a: MatrixFormat::Csr,
        acf_b: MatrixFormat::Csr,
    };
    let eval = sys
        .sage
        .evaluate(&w, &choice, ConversionMode::Hardware)
        .unwrap();

    // Monolithic: typed, recoverable rejection.
    match sys.run_with_choice(&a, &b, eval.clone()) {
        Err(e @ RunError::StationaryTooLarge { .. }) => assert!(e.is_recoverable()),
        other => panic!("expected StationaryTooLarge, got {other:?}"),
    }

    // Pipelined: runs, is correct, and the double-buffered schedule is
    // strictly faster than serial convert-then-compute.
    let run = sys
        .run_pipelined_with_evaluation(&a, &b, eval.clone(), false)
        .expect("tiling renders the rejection unreachable");
    let expect = gemm_naive(&a.clone().into_dense(), &b.clone().into_dense());
    assert!(run.output.approx_eq(&expect, 1e-9));
    assert!(run.tiles.len() >= 2);
    assert!(
        run.overlapped_cycles() < run.serial_cycles(),
        "overlapped {} must beat serial {}",
        run.overlapped_cycles(),
        run.serial_cycles()
    );

    // And through the batch front-end.
    let batch = sys.run_batch(&[BatchJob {
        a: a.clone(),
        b: b.clone(),
        workload: w,
    }]);
    let via_batch = batch.results[0].as_ref().unwrap();
    assert_eq!(via_batch.output, run.output);
}

/// Degenerate operands: empty matrices and all-empty tiles flow through
/// the pipeline and batch without panicking.
#[test]
fn empty_operands_and_tiles() {
    let sys = small_system();
    let a = CooMatrix::empty(5, 7);
    let b = CooMatrix::empty(7, 9);
    let w = spgemm_workload(&a, &b);
    let run = sys.run_pipelined(&a, &b, &w).unwrap();
    assert_eq!(run.output.count_nonzeros(), 0);
    let mono = sys.run_functional(&a, &b, &w).unwrap();
    assert_eq!(run.output, mono.sim.output);
}

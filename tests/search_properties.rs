//! Property suite for the open-descriptor search space: the conformance
//! gate that makes beam search over **non-preset** format compositions
//! trustworthy.
//!
//! Random Open-space `FormatDescriptor`s (seeded, via the vendored
//! proptest) are encoded through `CustomMatrix` and executed by the
//! fiber-stream kernels; results must match the dense reference
//! **bit-for-bit** (integer-valued fixtures make f64 arithmetic exact,
//! so any divergence is a traversal bug, not rounding). On top of the
//! conformance gate, the suite pins the beam search's determinism, the
//! preset candidate counts the lazy enumeration must preserve, and the
//! ISSUE acceptance bar: on a Table III workload the open-space beam
//! beats every paper-preset MCF choice while visiting < 25% of the
//! exhaustive candidates.

use proptest::prelude::*;
use sparseflex::formats::descriptor::{enumerate_matrix_iter, Level, RankOrder, ValuesLayout};
use sparseflex::formats::{
    CooMatrix, CustomMatrix, DataType, DenseMatrix, FormatDescriptor, SearchSpace, SparseMatrix,
};
use sparseflex::kernels::gemm::gemm_naive;
use sparseflex::kernels::spmm_from_stream;
use sparseflex::sage::{BeamConfig, Sage, SageWorkload, SearchObjective};

/// Every two-level row-major composition over the Open space's level
/// pool that validates as a matrix format — presets (U·C = CSR) and
/// non-presets (B·C, B·R4, ...) alike, plus run-length width variants.
fn open_descriptor_pool() -> Vec<FormatDescriptor> {
    let outers = [Level::Uncompressed, Level::Bitmask];
    let inners = [
        Level::CompressedOffsets,
        Level::Bitmask,
        Level::RunLength { run_bits: 2 },
        Level::RunLength { run_bits: 4 },
        Level::RunLength { run_bits: 8 },
    ];
    let mut pool = Vec::new();
    for outer in outers {
        for inner in inners {
            let d = FormatDescriptor::new(
                RankOrder::RowMajor,
                vec![outer, inner],
                ValuesLayout::Contiguous,
            );
            if d.validate_matrix().is_ok() {
                pool.push(d);
            }
        }
    }
    assert!(pool.len() >= 6, "level pool unexpectedly small");
    pool
}

fn arb_open_descriptor() -> impl Strategy<Value = FormatDescriptor> {
    let pool = open_descriptor_pool();
    (0..pool.len()).prop_map(move |i| pool[i].clone())
}

fn arb_sparse(rows: usize, cols: usize, max_nnz: usize) -> impl Strategy<Value = CooMatrix> {
    proptest::collection::vec(
        ((0..rows), (0..cols), -8i32..8).prop_map(|(r, c, v)| (r, c, v as f64)),
        0..max_nnz,
    )
    .prop_map(move |t| CooMatrix::from_triplets(rows, cols, t).unwrap())
}

fn arb_dense(rows: usize, cols: usize) -> impl Strategy<Value = DenseMatrix> {
    proptest::collection::vec(-8i32..8, rows * cols).prop_map(move |v| {
        DenseMatrix::from_vec(rows, cols, v.into_iter().map(|x| x as f64).collect()).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// SpMV through a random open-space encoding is bit-for-bit the
    /// dense reference (an SpMM with a one-column dense operand).
    #[test]
    fn spmv_through_random_open_descriptors_is_exact(
        a in arb_sparse(12, 10, 48),
        x in arb_dense(10, 1),
        desc in arb_open_descriptor(),
    ) {
        let enc = CustomMatrix::encode(&a, &desc).unwrap();
        let expect = gemm_naive(&a.clone().into_dense(), &x);
        let got = spmm_from_stream(a.rows(), a.cols(), &enc, &x).unwrap();
        prop_assert_eq!(got, expect, "spmv through {}", desc);
    }

    /// SpMM through a random open-space encoding is bit-for-bit the
    /// dense reference.
    #[test]
    fn spmm_through_random_open_descriptors_is_exact(
        a in arb_sparse(11, 9, 40),
        b in arb_dense(9, 6),
        desc in arb_open_descriptor(),
    ) {
        let enc = CustomMatrix::encode(&a, &desc).unwrap();
        let expect = gemm_naive(&a.clone().into_dense(), &b);
        let got = spmm_from_stream(a.rows(), a.cols(), &enc, &b).unwrap();
        prop_assert_eq!(got, expect, "spmm through {}", desc);
    }

    /// The encoding also sizes: every sampled descriptor reports a
    /// positive storage footprint for a non-empty operand.
    #[test]
    fn random_open_descriptors_are_sizable(
        a in arb_sparse(12, 10, 48),
        desc in arb_open_descriptor(),
    ) {
        let enc = CustomMatrix::encode(&a, &desc).unwrap();
        prop_assert!(enc.storage_bits(DataType::Fp32) > 0);
    }
}

/// Fixed-seed beam search is deterministic: the same configuration on
/// fresh engines returns the same plan, candidate counts and pruning
/// decisions, run after run.
#[test]
fn fixed_seed_beam_search_is_deterministic() {
    let w = SageWorkload::spgemm(11_000, 11_000, 5_500, 6_600, 3_300, DataType::Fp32);
    let cfg = BeamConfig {
        seed: 0xD5EE_D001,
        ..BeamConfig::default()
    };
    let reference = Sage::default().recommend_open_with(&w, &cfg);
    for _ in 0..3 {
        let again = Sage::default().recommend_open_with(&w, &cfg);
        assert_eq!(again.best.choice, reference.best.choice);
        assert_eq!(again.best.total_cycles(), reference.best.total_cycles());
        assert_eq!(again.visited, reference.visited);
        assert_eq!(again.pruned, reference.pruned);
    }
}

/// The lazy enumeration keeps the preset candidate counts the paper's
/// search is pinned to: 6 MCFs and 4 ACFs, which with the ACF pair
/// legality rules yield 324 SpGEMM / 288 SpMM candidates.
#[test]
fn preset_candidate_counts_stay_pinned_under_lazy_enumeration() {
    assert_eq!(enumerate_matrix_iter(SearchSpace::McfPaper).count(), 6);
    assert_eq!(enumerate_matrix_iter(SearchSpace::AcfPaper).count(), 4);
    let sage = Sage::default();
    let spgemm = SageWorkload::spgemm(200, 200, 100, 2_000, 1_000, DataType::Fp32);
    assert_eq!(sage.recommend(&spgemm).candidates, 324);
    let spmm = SageWorkload::spmm(200, 200, 100, 2_000, DataType::Fp32);
    assert_eq!(sage.recommend(&spmm).candidates, 288);
}

/// The ISSUE acceptance bar, asserted end-to-end on a Table III
/// workload (m3plates, the hyper-sparse regime): the open-space beam
/// finds a plan whose simulated cycles beat **every** paper-preset MCF
/// choice, while visiting < 25% of what exhaustive enumeration would
/// score.
#[test]
fn open_beam_beats_every_paper_preset_on_m3plates_within_visit_budget() {
    let sage = Sage::default();
    // m3plates: 11000x11000, 6600 nnz (Table III), SpGEMM against a
    // rank-5500 factor.
    let w = SageWorkload::spgemm(11_000, 11_000, 5_500, 6_600, 3_300, DataType::Fp32);
    let preset_best = sparseflex_bench::search::preset_best_cycles(&sage, &w);
    let open = sage.recommend_open_with(
        &w,
        &BeamConfig {
            objective: SearchObjective::Cycles,
            ..BeamConfig::default()
        },
    );
    assert!(
        open.best.total_cycles() < preset_best,
        "open beam ({}) must beat every preset ({})",
        open.best.total_cycles(),
        preset_best
    );
    assert!(
        open.visited_fraction() < 0.25,
        "visited {}/{}",
        open.visited,
        open.exhaustive
    );
}

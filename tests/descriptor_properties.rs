//! Property suite for the per-rank format-descriptor redesign:
//!
//! (a) legacy enum → descriptor → legacy enum round-trips losslessly for
//!     every preset (structural parameters included),
//! (b) the descriptor-driven generic size model is **bit-identical** to
//!     the paper's closed-form per-format formulas (copied verbatim
//!     below as the pinned reference), analytic and exact,
//! (c) the plan cache hits across the legacy-enum and descriptor entry
//!     points for the same workload,
//! (d) an open (non-preset) composition executes end-to-end — through
//!     the fiber-stream SpMM and through `FlexSystem` — matching the
//!     dense reference exactly,
//! (e) stored-elements vs logical-nnz accounting is centralized and
//!     consistent for the explicit-zero formats.

use proptest::prelude::*;
use sparseflex::formats::descriptor::{enumerate_matrix, Level, RankOrder, ValuesLayout};
use sparseflex::formats::size_model::{
    matrix_storage_bits, matrix_storage_bits_exact, rlc_expected_entries, tensor_storage_bits,
};
use sparseflex::formats::{
    ceil_log2, encode_with_descriptor, CooMatrix, CustomMatrix, DataType, FormatDescriptor,
    MatrixData, MatrixFormat, SearchSpace, SparseMatrix, TensorFormat,
};
use sparseflex::kernels::gemm::gemm_naive;
use sparseflex::sage::{DescriptorChoice, FormatChoice, SageWorkload};
use sparseflex::system::FlexSystem;
use sparseflex::workloads::synth::random_matrix;

// ---------------------------------------------------------------------------
// The paper's closed-form per-format formulas, copied verbatim from the
// pre-descriptor size model. These are the bit-for-bit pin: if the
// generic level model ever drifts from them, this file fails.
// ---------------------------------------------------------------------------

fn legacy_matrix_storage_bits(
    format: &MatrixFormat,
    rows: usize,
    cols: usize,
    nnz: usize,
    dtype: DataType,
) -> u64 {
    use sparseflex::formats::size_model::bsr_expected_blocks;
    let m = rows as u64;
    let k = cols as u64;
    let n = nnz as u64;
    let b = dtype.bits();
    match *format {
        MatrixFormat::Dense => m * k * b,
        MatrixFormat::Coo => n * (b + u64::from(ceil_log2(m)) + u64::from(ceil_log2(k))),
        MatrixFormat::Csr => {
            n * (b + u64::from(ceil_log2(k))) + (m + 1) * u64::from(ceil_log2(n + 1))
        }
        MatrixFormat::Csc => {
            n * (b + u64::from(ceil_log2(m))) + (k + 1) * u64::from(ceil_log2(n + 1))
        }
        MatrixFormat::Rlc { run_bits } => {
            rlc_expected_entries(m * k, n, run_bits) * (b + u64::from(run_bits))
        }
        MatrixFormat::Zvc => n * b + m * k,
        MatrixFormat::Bsr { br, bc } => {
            let blocks = bsr_expected_blocks(rows, cols, nnz, br, bc);
            let nbr = rows.div_ceil(br) as u64;
            let nbc = cols.div_ceil(bc) as u64;
            blocks * ((br * bc) as u64 * b + u64::from(ceil_log2(nbc)))
                + (nbr + 1) * u64::from(ceil_log2(blocks + 1))
        }
        MatrixFormat::Dia => {
            let total = m * k;
            if total == 0 {
                return 0;
            }
            let d = n as f64 / total as f64;
            let ndiags_max = m + k - 1;
            let avg_len = total as f64 / ndiags_max as f64;
            let p = 1.0 - (1.0 - d).powf(avg_len);
            let ndiags = (ndiags_max as f64 * p).ceil() as u64;
            ndiags * (m * b + u64::from(ceil_log2(m + k)))
        }
        MatrixFormat::Ell => {
            let total = m * k;
            if total == 0 {
                return 0;
            }
            let d = n as f64 / total as f64;
            let mean = k as f64 * d;
            let sd = (k as f64 * d * (1.0 - d)).sqrt();
            let width = (mean + 2.0 * sd).ceil().max(if n > 0 { 1.0 } else { 0.0 }) as u64;
            let width = width.min(k);
            m * width * (b + u64::from(ceil_log2(k)))
        }
    }
}

fn legacy_matrix_storage_bits_exact(data: &MatrixData, dtype: DataType) -> u64 {
    let rows = data.rows() as u64;
    let cols = data.cols() as u64;
    let b = dtype.bits();
    match data {
        MatrixData::Dense(_) => rows * cols * b,
        MatrixData::Coo(m) => {
            m.nnz() as u64 * (b + u64::from(ceil_log2(rows)) + u64::from(ceil_log2(cols)))
        }
        MatrixData::Csr(m) => {
            let n = m.nnz() as u64;
            n * (b + u64::from(ceil_log2(cols))) + (rows + 1) * u64::from(ceil_log2(n + 1))
        }
        MatrixData::Csc(m) => {
            let n = m.nnz() as u64;
            n * (b + u64::from(ceil_log2(rows))) + (cols + 1) * u64::from(ceil_log2(n + 1))
        }
        MatrixData::Bsr(m) => {
            let (br, bc) = m.block_shape();
            let blocks = m.num_blocks() as u64;
            let nbr = m.rows().div_ceil(br) as u64;
            let nbc = m.cols().div_ceil(bc) as u64;
            blocks * ((br * bc) as u64 * b + u64::from(ceil_log2(nbc)))
                + (nbr + 1) * u64::from(ceil_log2(blocks + 1))
        }
        MatrixData::Dia(m) => {
            m.num_diagonals() as u64 * (rows * b + u64::from(ceil_log2(rows + cols)))
        }
        MatrixData::Ell(m) => rows * m.width() as u64 * (b + u64::from(ceil_log2(cols))),
        MatrixData::Rlc(m) => {
            let max_run = (1u64 << m.run_bits()) - 1;
            let tail_entries = m.trailing_zeros() / (max_run + 1);
            (m.stored_entries() as u64 + tail_entries) * (b + u64::from(m.run_bits()))
        }
        MatrixData::Zvc(m) => m.nnz() as u64 * b + rows * cols,
    }
}

fn legacy_tensor_storage_bits(
    format: &TensorFormat,
    dims: (usize, usize, usize),
    nnz: usize,
    dtype: DataType,
) -> u64 {
    let (x, y, z) = (dims.0 as u64, dims.1 as u64, dims.2 as u64);
    let n = nnz as u64;
    let b = dtype.bits();
    let total = x * y * z;
    match *format {
        TensorFormat::Dense => total * b,
        TensorFormat::Coo => {
            n * (b + u64::from(ceil_log2(x)) + u64::from(ceil_log2(y)) + u64::from(ceil_log2(z)))
        }
        TensorFormat::Csf => {
            if total == 0 {
                return 0;
            }
            let d = n as f64 / total as f64;
            let slices = (x as f64 * (1.0 - (1.0 - d).powf((y * z) as f64))).ceil() as u64;
            let fibers = ((x * y) as f64 * (1.0 - (1.0 - d).powf(z as f64))).ceil() as u64;
            n * (b + u64::from(ceil_log2(z)))
                + fibers * u64::from(ceil_log2(y))
                + (fibers + 1) * u64::from(ceil_log2(n + 1))
                + slices * u64::from(ceil_log2(x))
                + (slices + 1) * u64::from(ceil_log2(fibers + 1))
        }
        TensorFormat::HiCoo { block } => {
            if total == 0 {
                return 0;
            }
            let bl = block as u64;
            let d = n as f64 / total as f64;
            let nb = (x.div_ceil(bl) * y.div_ceil(bl) * z.div_ceil(bl)) as f64;
            let p = 1.0 - (1.0 - d).powf((bl * bl * bl) as f64);
            let blocks = (nb * p).ceil() as u64;
            let bbits = u64::from(ceil_log2(x.div_ceil(bl)))
                + u64::from(ceil_log2(y.div_ceil(bl)))
                + u64::from(ceil_log2(z.div_ceil(bl)));
            let ebits = 3 * u64::from(ceil_log2(bl));
            blocks * bbits + (blocks + 1) * u64::from(ceil_log2(n + 1)) + n * (b + ebits)
        }
        TensorFormat::Rlc { run_bits } => {
            rlc_expected_entries(total, n, run_bits) * (b + u64::from(run_bits))
        }
        TensorFormat::Zvc => n * b + total,
    }
}

fn matrix_formats(br: usize, bc: usize, run_bits: u32) -> Vec<MatrixFormat> {
    vec![
        MatrixFormat::Dense,
        MatrixFormat::Coo,
        MatrixFormat::Csr,
        MatrixFormat::Csc,
        MatrixFormat::Bsr { br, bc },
        MatrixFormat::Dia,
        MatrixFormat::Ell,
        MatrixFormat::Rlc { run_bits },
        MatrixFormat::Zvc,
    ]
}

fn tensor_formats(block: usize, run_bits: u32) -> Vec<TensorFormat> {
    vec![
        TensorFormat::Dense,
        TensorFormat::Coo,
        TensorFormat::Csf,
        TensorFormat::HiCoo { block },
        TensorFormat::Rlc { run_bits },
        TensorFormat::Zvc,
    ]
}

fn arb_matrix() -> impl Strategy<Value = CooMatrix> {
    (1usize..24, 1usize..24).prop_flat_map(|(r, c)| {
        proptest::collection::vec(
            ((0..r), (0..c), -100i32..100).prop_map(|(i, j, v)| (i, j, v as f64)),
            0..40,
        )
        .prop_map(move |trips| {
            CooMatrix::from_triplets(r, c, trips).expect("in-bounds by construction")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // (a) Round trips, with random structural parameters.
    #[test]
    fn every_preset_round_trips_through_its_descriptor(
        br in 1usize..7, bc in 1usize..7, run_bits in 1u32..12, block in 1usize..9
    ) {
        for fmt in matrix_formats(br, bc, run_bits) {
            let desc = FormatDescriptor::from(fmt);
            prop_assert_eq!(desc.to_matrix_format(), Some(fmt));
            prop_assert_eq!(MatrixFormat::from_descriptor(&desc), Some(fmt));
        }
        for fmt in tensor_formats(block, run_bits) {
            let desc = FormatDescriptor::from(fmt);
            prop_assert_eq!(desc.to_tensor_format(), Some(fmt));
            prop_assert_eq!(TensorFormat::from_descriptor(&desc), Some(fmt));
        }
    }

    // (b) Analytic sizes: descriptor model == legacy formulas, bit for bit.
    #[test]
    fn descriptor_sizes_match_legacy_formulas_bit_for_bit(
        rows in 1usize..3000, cols in 1usize..3000, dens_ppm in 0u64..1_000_000,
        br in 1usize..7, bc in 1usize..7, run_bits in 1u32..12,
        dtype_ix in 0usize..3
    ) {
        let dtype = [DataType::Int8, DataType::Int16, DataType::Fp32][dtype_ix];
        let nnz = ((rows * cols) as u64 * dens_ppm / 1_000_000) as usize;
        for fmt in matrix_formats(br, bc, run_bits) {
            prop_assert_eq!(
                matrix_storage_bits(&fmt, rows, cols, nnz, dtype),
                legacy_matrix_storage_bits(&fmt, rows, cols, nnz, dtype),
                "analytic drift for {}", fmt
            );
        }
    }

    #[test]
    fn descriptor_tensor_sizes_match_legacy_formulas_bit_for_bit(
        x in 1usize..200, y in 1usize..200, z in 1usize..60, dens_ppm in 0u64..1_000_000,
        block in 1usize..9, run_bits in 1u32..12,
        dtype_ix in 0usize..2
    ) {
        let dtype = [DataType::Int8, DataType::Fp32][dtype_ix];
        let nnz = ((x * y * z) as u64 * dens_ppm / 1_000_000) as usize;
        for fmt in tensor_formats(block, run_bits) {
            prop_assert_eq!(
                tensor_storage_bits(&fmt, (x, y, z), nnz, dtype),
                legacy_tensor_storage_bits(&fmt, (x, y, z), nnz, dtype),
                "tensor analytic drift for {}", fmt
            );
        }
    }

    // (b) Exact sizes on real payloads.
    #[test]
    fn exact_descriptor_sizes_match_legacy_on_real_payloads(coo in arb_matrix()) {
        for fmt in matrix_formats(2, 3, 3) {
            let data = MatrixData::encode(&coo, &fmt).unwrap();
            prop_assert_eq!(
                matrix_storage_bits_exact(&data, DataType::Fp32),
                legacy_matrix_storage_bits_exact(&data, DataType::Fp32),
                "exact drift for {}", fmt
            );
        }
    }

    // (e) Central explicit-zero accounting.
    #[test]
    fn stored_elements_accounting_is_consistent(coo in arb_matrix()) {
        for fmt in matrix_formats(2, 2, 4) {
            let data = MatrixData::encode(&coo, &fmt).unwrap();
            let stored = data.stored_elements();
            let logical = data.logical_nnz();
            prop_assert_eq!(logical, coo.nnz() as u64, "logical nnz drift for {}", fmt);
            prop_assert!(
                stored >= logical,
                "{} stores {} slots for {} nonzeros", fmt, stored, logical
            );
            // The descriptor knows which presets pad; compact ones store
            // exactly their nonzeros.
            if !data.descriptor().stores_explicit_zeros() {
                prop_assert_eq!(stored, logical, "compact format {} padded", fmt);
            }
        }
    }

    // (d) Every open two-rank composition computes a correct SpMM via the
    // fiber-stream path.
    #[test]
    fn open_compositions_compute_correct_spmm(coo in arb_matrix()) {
        let b_dense = {
            // A small dense factor with deterministic values.
            let k = coo.cols();
            let n = 5usize;
            let trips: Vec<(usize, usize, f64)> = (0..k)
                .flat_map(|r| (0..n).map(move |c| (r, c, (r * n + c + 1) as f64)))
                .collect();
            CooMatrix::from_triplets(k, n, trips).unwrap().into_dense()
        };
        let reference = gemm_naive(&coo.clone().into_dense(), &b_dense);
        for desc in enumerate_matrix(SearchSpace::Open) {
            if desc.to_matrix_format().is_some() || desc.levels.len() != 2 {
                continue;
            }
            let enc = CustomMatrix::encode(&coo, &desc).unwrap();
            let out = sparseflex::kernels::spmm_from_stream(
                coo.rows(), coo.cols(), &enc, &b_dense,
            ).unwrap();
            prop_assert!(out.approx_eq(&reference, 1e-9), "SpMM mismatch for {}", desc);
        }
    }
}

// (c) Plan-cache hits across the legacy and descriptor entry points.
#[test]
fn plan_cache_hits_across_legacy_and_descriptor_entry_points() {
    let mut sys = FlexSystem::default();
    sys.sage.accel.num_pes = 16;
    sys.sage.accel.pe_buffer_elems = 64;
    let a = random_matrix(24, 32, 80, 1);
    let b = random_matrix(32, 20, 60, 2);
    let w = SageWorkload::spgemm(24, 32, 20, 80, 60, DataType::Fp32);
    let choice = FormatChoice {
        mcf_a: MatrixFormat::Zvc,
        mcf_b: MatrixFormat::Csr,
        acf_a: MatrixFormat::Csr,
        acf_b: MatrixFormat::Dense,
    };

    // First run through the legacy enum entry point: a cache miss.
    let run1 = sys.run_with_formats(&a, &b, &w, &choice).unwrap();
    assert!(!run1.plan.from_cache, "first pinned run must evaluate");

    // Second run through the descriptor entry point: same formats, same
    // workload — must be served from the same cache row.
    let dchoice = DescriptorChoice::from(&choice);
    let run2 = sys.run_with_descriptors(&a, &b, &w, &dchoice).unwrap();
    assert!(
        run2.plan.from_cache,
        "descriptor entry point must hit the legacy entry's cache row"
    );
    assert_eq!(
        run1.plan.choice_fingerprint(),
        run2.plan.choice_fingerprint()
    );
    let counters = sys.planner.cache.counters();
    assert_eq!((counters.hits, counters.misses), (1, 1));

    // Both runs computed the same (correct) output.
    let expect = gemm_naive(&a.clone().into_dense(), &b.clone().into_dense());
    assert!(run1.sim.output.approx_eq(&expect, 1e-9));
    assert!(run2.sim.output.approx_eq(&expect, 1e-9));

    // A different choice is a different row.
    let other = FormatChoice {
        mcf_a: MatrixFormat::Coo,
        ..choice
    };
    let run3 = sys.run_with_formats(&a, &b, &w, &other).unwrap();
    assert!(!run3.plan.from_cache, "distinct formats must not collide");
}

// (d) An open composition runs end-to-end through FlexSystem, pinned
// against the dense reference.
#[test]
fn custom_mcf_descriptor_executes_through_flex_system() {
    let mut sys = FlexSystem::default();
    sys.sage.accel.num_pes = 16;
    sys.sage.accel.pe_buffer_elems = 64;
    let a = random_matrix(24, 32, 90, 5);
    let b = random_matrix(32, 12, 32 * 12, 6); // dense factor

    // Bitmask rows x run-length columns — the paper's §III levels in a
    // combination its format list never had.
    let mcf_a = FormatDescriptor::new(
        RankOrder::RowMajor,
        vec![Level::Bitmask, Level::RunLength { run_bits: 4 }],
        ValuesLayout::Contiguous,
    );
    assert_eq!(mcf_a.to_matrix_format(), None, "must be a non-preset");
    let mcf_b = FormatDescriptor::dense();

    let run = sys.run_custom_mcf(&a, &b, &mcf_a, &mcf_b).unwrap();
    let expect = gemm_naive(&a.clone().into_dense(), &b.clone().into_dense());
    assert!(
        run.output().approx_eq(&expect, 1e-9),
        "custom-MCF output mismatch"
    );
    assert!(run.sim.cycles.total() > 0, "simulator must actually run");
    assert!(run.mcf_a_bits > 0 && run.mcf_b_bits > 0);
    // The custom encoding must be more compact than dense storage at
    // this sparsity (90 / 768 ≈ 12%).
    let dense_bits = 24 * 32 * 32u64;
    assert!(
        run.mcf_a_bits < dense_bits,
        "custom MCF {} bits should beat dense {} bits",
        run.mcf_a_bits,
        dense_bits
    );
}

// Descriptor encodings round-trip through the preset router.
#[test]
fn encode_with_descriptor_is_descriptor_faithful() {
    let coo = random_matrix(15, 17, 40, 9);
    for desc in enumerate_matrix(SearchSpace::Open) {
        if desc.levels.len() > 2 {
            continue;
        }
        let enc = match encode_with_descriptor(&coo, &desc) {
            Ok(enc) => enc,
            Err(e) => panic!("{desc} failed to encode: {e}"),
        };
        assert_eq!(enc.as_sparse().to_coo(), coo, "payload drift for {desc}");
        assert_eq!(
            enc.descriptor().fingerprint(),
            desc.fingerprint(),
            "descriptor identity lost for {desc}"
        );
    }
}

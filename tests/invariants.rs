//! Cross-cutting invariants not covered by the per-crate suites:
//! CSC-streaming semantics, monotonicity of the cost models, and
//! EDP/normalization algebra.

use sparseflex::accel::exec::simulate_ws;
use sparseflex::accel::{AccelConfig, DramModel};
use sparseflex::formats::{DataType, MatrixData, MatrixFormat, RlcTensor3, SparseTensor3};
use sparseflex::kernels::gemm::gemm_naive;
use sparseflex::sage::{Sage, SageWorkload};
use sparseflex::workloads::synth::{random_matrix, random_tensor3};

#[test]
fn csc_streaming_flushes_every_mac() {
    // Column-major streaming changes the output row per element, so the
    // walkthrough semantics flush per MAC (§IV-B Oreg rules).
    let cfg = AccelConfig::walkthrough();
    let a = random_matrix(6, 8, 20, 1);
    let b = random_matrix(8, 4, 32, 2); // dense B (all slots filled)
    let r = simulate_ws(
        &MatrixData::encode(&a, &MatrixFormat::Csc).unwrap(),
        &MatrixData::encode(&b, &MatrixFormat::Dense).unwrap(),
        &cfg,
    )
    .unwrap();
    assert_eq!(r.counts.output_flushes, r.counts.effective_macs);
    assert_eq!(
        r.output,
        gemm_naive(&a.clone().into_dense(), &b.clone().into_dense())
    );
}

#[test]
fn narrower_bus_never_speeds_streaming() {
    let a = random_matrix(12, 16, 60, 3);
    let b = random_matrix(16, 8, 64, 4);
    let da = MatrixData::encode(&a, &MatrixFormat::Csr).unwrap();
    let db = MatrixData::encode(&b, &MatrixFormat::Dense).unwrap();
    let mut prev = 0u64;
    for slots in [16usize, 9, 5, 3] {
        let cfg = AccelConfig {
            bus_slots: slots,
            ..AccelConfig::walkthrough()
        };
        let r = simulate_ws(&da, &db, &cfg).unwrap();
        assert!(
            r.cycles.stream_a >= prev,
            "narrowing bus to {slots} slots reduced cycles to {}",
            r.cycles.stream_a
        );
        prev = r.cycles.stream_a;
    }
}

#[test]
fn bigger_buffers_never_increase_total_cycles() {
    let a = random_matrix(16, 40, 120, 5);
    let b = random_matrix(40, 8, 120, 6);
    let da = MatrixData::encode(&a, &MatrixFormat::Csr).unwrap();
    let db = MatrixData::encode(&b, &MatrixFormat::Csc).unwrap();
    let mut prev = u64::MAX;
    for buf in [8usize, 16, 64, 256] {
        let cfg = AccelConfig {
            pe_buffer_elems: buf,
            ..AccelConfig::walkthrough()
        };
        let r = simulate_ws(&da, &db, &cfg).unwrap();
        assert!(
            r.cycles.total() <= prev,
            "buffer {buf} raised cycles to {}",
            r.cycles.total()
        );
        prev = r.cycles.total();
    }
}

#[test]
fn dram_model_is_monotone_in_nnz() {
    let d = DramModel::paper();
    let mut prev = 0;
    for nnz in [10usize, 100, 1_000, 10_000] {
        let c = d.matrix_fetch_cycles(&MatrixFormat::Coo, 1_000, 1_000, nnz, DataType::Fp32);
        assert!(c >= prev, "COO fetch not monotone at nnz={nnz}");
        prev = c;
    }
}

#[test]
fn sage_edp_scales_quadratically_with_problem_size() {
    // Doubling every dimension multiplies work ~8x and traffic ~4x, so
    // EDP (energy x time) must grow superlinearly — a sanity lock on the
    // unit bookkeeping (J x s, not J x cycles).
    let sage = Sage::default();
    let small = SageWorkload::spmm(500, 500, 250, 12_500, DataType::Fp32);
    let large = SageWorkload::spmm(1_000, 1_000, 500, 50_000, DataType::Fp32);
    let e_small = sage.recommend(&small).best.edp(sage.accel.clock_hz);
    let e_large = sage.recommend(&large).best.edp(sage.accel.clock_hz);
    assert!(
        e_large > 4.0 * e_small,
        "EDP grew only {}x across 2x scaling",
        e_large / e_small
    );
}

#[test]
fn rlc_tensor_handles_all_boundary_positions() {
    // Nonzeros at the very first and very last flat positions, with a
    // tiny run field forcing extension entries in between.
    let t = random_tensor3(3, 3, 3, 0, 1); // empty base
    assert_eq!(t.nnz(), 0);
    let coo =
        sparseflex::formats::CooTensor3::from_quads(3, 3, 3, vec![(0, 0, 0, 1.5), (2, 2, 2, -2.5)])
            .unwrap();
    let rlc = RlcTensor3::from_coo(&coo, 2); // max run = 3
    assert_eq!(rlc.get(0, 0, 0), 1.5);
    assert_eq!(rlc.get(2, 2, 2), -2.5);
    assert_eq!(rlc.get(1, 1, 1), 0.0);
    assert_eq!(rlc.to_coo(), coo);
    // 25 zeros between the nonzeros at 3-per-extension = several entries.
    assert!(rlc.stored_entries() > 2);
}

#[test]
fn utilization_is_bounded_and_ordered() {
    // For the same operands: sparse-sparse ACF utilization >= sparse-dense
    // >= dense-dense, and all within [0, 1].
    let cfg = AccelConfig::walkthrough();
    let a = random_matrix(8, 12, 24, 7);
    let b = random_matrix(12, 4, 12, 8);
    let mut utils = Vec::new();
    for (fa, fb) in [
        (MatrixFormat::Csr, MatrixFormat::Csc),
        (MatrixFormat::Csr, MatrixFormat::Dense),
        (MatrixFormat::Dense, MatrixFormat::Dense),
    ] {
        let r = simulate_ws(
            &MatrixData::encode(&a, &fa).unwrap(),
            &MatrixData::encode(&b, &fb).unwrap(),
            &cfg,
        )
        .unwrap();
        let u = r.counts.utilization();
        assert!((0.0..=1.0).contains(&u));
        utils.push(u);
    }
    assert!(
        utils[0] >= utils[1],
        "csr-csc {} < csr-dense {}",
        utils[0],
        utils[1]
    );
    assert!(
        utils[1] >= utils[2],
        "csr-dense {} < dense-dense {}",
        utils[1],
        utils[2]
    );
}

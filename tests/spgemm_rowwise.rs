//! Row-wise-product SpGEMM acceptance suite: for **every** pair of
//! matrix compression formats, `spgemm_rowwise` must equal Gustavson's
//! `spgemm` bit-for-bit (same CSR structure, same value bits — the merge
//! replays Gustavson's exact addition order), and both must equal the
//! dense reference on integer-valued fixtures. Degenerate shapes (empty
//! operands, an oversized stationary operand far wider than its nonzero
//! count) ride the same assertions.

use sparseflex::formats::{CooMatrix, MatrixData, MatrixFormat, SparseMatrix};
use sparseflex::kernels::gemm::gemm_naive;
use sparseflex::kernels::{spgemm, spgemm_rowwise, spgemm_with, SpgemmAlgo};

fn matrix_formats() -> Vec<MatrixFormat> {
    vec![
        MatrixFormat::Dense,
        MatrixFormat::Coo,
        MatrixFormat::Csr,
        MatrixFormat::Csc,
        MatrixFormat::Bsr { br: 3, bc: 2 },
        MatrixFormat::Dia,
        MatrixFormat::Ell,
        MatrixFormat::Rlc { run_bits: 3 },
        MatrixFormat::Zvc,
    ]
}

/// Deterministic integer-valued fixture (exact in f64, so bit-for-bit
/// equality is meaningful; includes values that cancel in the products).
fn fixture(rows: usize, cols: usize, nnz: usize, seed: u64) -> CooMatrix {
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    let triplets: Vec<(usize, usize, f64)> = (0..nnz)
        .map(|_| {
            let r = (next() % rows as u64) as usize;
            let c = (next() % cols as u64) as usize;
            let v = (next() % 17) as f64 - 8.0;
            (r, c, v)
        })
        .collect();
    CooMatrix::from_triplets(rows, cols, triplets).unwrap()
}

fn assert_pairwise(a_coo: &CooMatrix, b_coo: &CooMatrix, label: &str) {
    let reference = gemm_naive(&a_coo.clone().into_dense(), &b_coo.clone().into_dense());
    for fa in matrix_formats() {
        for fb in matrix_formats() {
            let a = MatrixData::encode(a_coo, &fa).unwrap();
            let b = MatrixData::encode(b_coo, &fb).unwrap();
            let g = spgemm(&a, &b).unwrap();
            let r = spgemm_rowwise(&a, &b).unwrap();
            assert_eq!(r, g, "{label}: rowwise != gustavson for ({fa}, {fb})");
            assert_eq!(
                g.to_dense(),
                reference,
                "{label}: gustavson != dense reference for ({fa}, {fb})"
            );
            // The explicit-algo entry point routes identically.
            assert_eq!(
                spgemm_with(&a, &b, SpgemmAlgo::RowWise).unwrap(),
                r,
                "{label}: spgemm_with(RowWise) for ({fa}, {fb})"
            );
        }
    }
}

#[test]
fn rowwise_matches_gustavson_and_dense_across_all_format_pairs() {
    let a = fixture(9, 7, 26, 1);
    let b = fixture(7, 11, 24, 2);
    assert_pairwise(&a, &b, "general");
}

#[test]
fn rowwise_handles_empty_operands_across_all_format_pairs() {
    // Empty A against populated B, populated A against empty B, and
    // empty against empty.
    let empty_a = CooMatrix::empty(6, 5);
    let empty_b = CooMatrix::empty(5, 8);
    let a = fixture(6, 5, 14, 3);
    let b = fixture(5, 8, 14, 4);
    assert_pairwise(&empty_a, &b, "empty_a");
    assert_pairwise(&a, &empty_b, "empty_b");
    assert_pairwise(&empty_a, &empty_b, "both_empty");
}

#[test]
fn rowwise_handles_oversized_stationary_operand() {
    // A hyper-sparse stationary B far wider than its nonzero count: the
    // regime the row-wise dataflow exists for (its scratch is the row
    // fan-out, not B's width). 9x9 format pairs on a 600-col B is the
    // expensive corner, so this fixture stays small in nnz.
    let a = fixture(8, 10, 18, 5);
    let b = fixture(10, 600, 20, 6);
    assert_pairwise(&a, &b, "oversized_b");
}

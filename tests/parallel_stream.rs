//! Data-parallel streaming properties — the acceptance suite for the
//! two-phase (partition → ranged traversal) fan-out of the generic
//! stream path.
//!
//! Three contracts are pinned here, across **every** matrix and tensor
//! format:
//!
//! 1. **Partitions are sound.** `row_partition` / `fiber_partition`
//!    return contiguous, disjoint, covering ranges whose per-range
//!    emitted-nnz never exceeds the ideal share by more than one fiber
//!    (whole fibers are never split), and concatenating the ranged
//!    walks in range order replays the full stream exactly.
//! 2. **Parallel kernels are bit-for-bit sequential.** At forced worker
//!    counts 1/2/3/7, every parallel kernel — SpMM, both SpGEMM
//!    dataflows, MTTKRP, SpTTM, and parallel CSR materialization —
//!    equals its sequential twin exactly (and the dense reference,
//!    exact on the small-integer operands generated here).
//! 3. **Warm worker arenas never allocate.** After one warm-up ranged
//!    pass, each range's repeat traversal performs zero heap
//!    allocations under the counting global allocator.

use proptest::prelude::*;
use sparseflex::formats::{
    csr_from_stream, CooMatrix, CooTensor3, DenseMatrix, DenseTensor3, MatrixData, MatrixFormat,
    SparseMatrix, StreamArena, TensorData, TensorFormat,
};
use sparseflex::kernels::gemm::gemm_naive;
use sparseflex::kernels::parallel::with_workers;
use sparseflex::kernels::{
    csr_from_stream_parallel, mttkrp_parallel, mttkrp_via_stream, spgemm_parallel_with,
    spgemm_with, spmm_parallel, spmm_via_stream, spttm_parallel, spttm_via_stream, SpgemmAlgo,
};
use sparseflex_bench::allocs;

#[global_allocator]
static ALLOC: allocs::CountingAllocator = allocs::CountingAllocator;

/// Every matrix format variant (block/run parameters exercise ragged
/// edges).
fn matrix_formats() -> Vec<MatrixFormat> {
    vec![
        MatrixFormat::Dense,
        MatrixFormat::Coo,
        MatrixFormat::Csr,
        MatrixFormat::Csc,
        MatrixFormat::Bsr { br: 3, bc: 2 },
        MatrixFormat::Dia,
        MatrixFormat::Ell,
        MatrixFormat::Rlc { run_bits: 3 },
        MatrixFormat::Zvc,
    ]
}

/// Every tensor format variant.
fn tensor_formats() -> Vec<TensorFormat> {
    vec![
        TensorFormat::Dense,
        TensorFormat::Coo,
        TensorFormat::Csf,
        TensorFormat::HiCoo { block: 2 },
        TensorFormat::Rlc { run_bits: 3 },
        TensorFormat::Zvc,
    ]
}

const WORKER_COUNTS: [usize; 4] = [1, 2, 3, 7];

type MatrixFibers = Vec<(usize, Vec<usize>, Vec<f64>)>;
type TensorFibers = Vec<(usize, usize, Vec<usize>, Vec<f64>)>;

fn matrix_fibers_full(data: &MatrixData) -> MatrixFibers {
    let mut out = Vec::new();
    data.row_stream().for_each_fiber(&mut |r, cols, vals| {
        out.push((r, cols.to_vec(), vals.to_vec()));
    });
    out
}

fn matrix_fibers_range(data: &MatrixData, range: std::ops::Range<usize>) -> MatrixFibers {
    let mut out = Vec::new();
    let mut arena = StreamArena::new();
    data.row_stream()
        .for_each_fiber_range_in(range, &mut arena, &mut |r, cols, vals| {
            out.push((r, cols.to_vec(), vals.to_vec()));
        });
    out
}

fn tensor_fibers_full(data: &TensorData) -> TensorFibers {
    let mut out = Vec::new();
    data.fiber_stream().for_each_fiber(&mut |x, y, zs, vals| {
        out.push((x, y, zs.to_vec(), vals.to_vec()));
    });
    out
}

fn tensor_fibers_range(data: &TensorData, range: std::ops::Range<usize>) -> TensorFibers {
    let mut out = Vec::new();
    let mut arena = StreamArena::new();
    data.fiber_stream()
        .for_each_fiber_range_in(range, &mut arena, &mut |x, y, zs, vals| {
            out.push((x, y, zs.to_vec(), vals.to_vec()));
        });
    out
}

/// Structural soundness shared by both partition kinds: ranges are
/// non-empty, contiguous, in order, start at 0, and end at `units`.
fn assert_partition_shape(
    ranges: &[std::ops::Range<usize>],
    units: usize,
    parts: usize,
    label: &str,
) {
    if units == 0 {
        assert!(
            ranges.is_empty(),
            "{label}: empty input must yield no ranges"
        );
        return;
    }
    assert!(!ranges.is_empty(), "{label}: non-empty input yields ranges");
    assert!(
        ranges.len() <= parts.max(1),
        "{label}: at most `parts` ranges"
    );
    assert_eq!(ranges[0].start, 0, "{label}: first range starts at 0");
    assert_eq!(
        ranges[ranges.len() - 1].end,
        units,
        "{label}: last range ends at {units}"
    );
    for w in ranges.windows(2) {
        assert_eq!(w[0].end, w[1].start, "{label}: ranges must be contiguous");
    }
    for r in ranges {
        assert!(r.start < r.end, "{label}: ranges must be non-empty");
    }
}

fn naive_mttkrp(t: &CooTensor3, b: &DenseMatrix, c: &DenseMatrix) -> DenseMatrix {
    use sparseflex::formats::SparseTensor3;
    let j = b.cols();
    let mut o = DenseMatrix::zeros(t.dim_x(), j);
    for (x, y, z, v) in t.iter() {
        for jj in 0..j {
            let cur = o.row(x)[jj];
            o.set(x, jj, cur + v * c.row(z)[jj] * b.row(y)[jj]);
        }
    }
    o
}

fn naive_spttm(t: &CooTensor3, b: &DenseMatrix) -> DenseTensor3 {
    use sparseflex::formats::SparseTensor3;
    let j = b.cols();
    let mut y = DenseTensor3::zeros(t.dim_x(), t.dim_y(), j);
    for (xi, yi, zi, v) in t.iter() {
        for jj in 0..j {
            y.add_assign(xi, yi, jj, v * b.row(zi)[jj]);
        }
    }
    y
}

fn arb_sparse(rows: usize, cols: usize, max_nnz: usize) -> impl Strategy<Value = CooMatrix> {
    proptest::collection::vec(
        ((0..rows), (0..cols), -8i32..8).prop_map(|(r, c, v)| (r, c, v as f64)),
        0..max_nnz,
    )
    .prop_map(move |t| CooMatrix::from_triplets(rows, cols, t).unwrap())
}

fn arb_dense(rows: usize, cols: usize) -> impl Strategy<Value = DenseMatrix> {
    proptest::collection::vec(-8i32..8, rows * cols).prop_map(move |v| {
        DenseMatrix::from_vec(rows, cols, v.into_iter().map(|x| x as f64).collect()).unwrap()
    })
}

fn arb_tensor(
    dx: usize,
    dy: usize,
    dz: usize,
    max_nnz: usize,
) -> impl Strategy<Value = CooTensor3> {
    proptest::collection::vec(
        ((0..dx), (0..dy), (0..dz), -5i32..5).prop_map(|(x, y, z, v)| (x, y, z, v as f64)),
        0..max_nnz,
    )
    .prop_map(move |q| CooTensor3::from_quads(dx, dy, dz, q).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Phase-1 soundness for matrices: partitions are contiguous,
    /// covering, nnz-balanced up to one fiber, and the concatenated
    /// ranged walks replay the full stream exactly.
    #[test]
    fn matrix_partitions_are_sound_and_ranged_walks_concatenate(
        a in arb_sparse(11, 13, 70),
    ) {
        for fmt in matrix_formats() {
            let data = MatrixData::encode(&a, &fmt).unwrap();
            let full = matrix_fibers_full(&data);
            let total: usize = full.iter().map(|(_, cs, _)| cs.len()).sum();
            let max_fiber = full.iter().map(|(_, cs, _)| cs.len()).max().unwrap_or(0);
            for parts in [1usize, 2, 3, 7, 16] {
                let ranges = data.row_stream().row_partition(parts);
                assert_partition_shape(&ranges, a.rows(), parts, &format!("{fmt} parts={parts}"));
                let mut glued = Vec::new();
                for r in &ranges {
                    let band = matrix_fibers_range(&data, r.clone());
                    for (row, _, _) in &band {
                        prop_assert!(r.contains(row), "{} fiber {} outside {:?}", fmt, row, r);
                    }
                    let band_nnz: usize = band.iter().map(|(_, cs, _)| cs.len()).sum();
                    prop_assert!(
                        band_nnz <= total.div_ceil(parts) + max_fiber,
                        "{} parts={} range {:?}: {} nnz exceeds balanced share",
                        fmt, parts, r, band_nnz
                    );
                    glued.extend(band);
                }
                prop_assert_eq!(&glued, &full, "{} parts={}", fmt, parts);
            }
        }
    }

    /// Phase-1 soundness for tensors, over the flattened `(x, y)` fiber
    /// key space.
    #[test]
    fn tensor_partitions_are_sound_and_ranged_walks_concatenate(
        t in arb_tensor(5, 4, 6, 40),
    ) {
        use sparseflex::formats::SparseTensor3;
        let keys = t.dim_x() * t.dim_y();
        for fmt in tensor_formats() {
            let data = TensorData::encode(&t, &fmt).unwrap();
            let full = tensor_fibers_full(&data);
            let total: usize = full.iter().map(|(_, _, zs, _)| zs.len()).sum();
            let max_fiber = full.iter().map(|(_, _, zs, _)| zs.len()).max().unwrap_or(0);
            for parts in [1usize, 2, 3, 7, 32] {
                let ranges = data.fiber_stream().fiber_partition(parts);
                assert_partition_shape(&ranges, keys, parts, &format!("{fmt} parts={parts}"));
                let mut glued = Vec::new();
                for r in &ranges {
                    let band = tensor_fibers_range(&data, r.clone());
                    for (x, y, _, _) in &band {
                        let key = x * t.dim_y() + y;
                        prop_assert!(r.contains(&key), "{} key {} outside {:?}", fmt, key, r);
                    }
                    let band_nnz: usize = band.iter().map(|(_, _, zs, _)| zs.len()).sum();
                    prop_assert!(
                        band_nnz <= total.div_ceil(parts) + max_fiber,
                        "{} parts={} range {:?}: {} nnz exceeds balanced share",
                        fmt, parts, r, band_nnz
                    );
                    glued.extend(band);
                }
                prop_assert_eq!(&glued, &full, "{} parts={}", fmt, parts);
            }
        }
    }

    /// Phase-2 for matrices: at every forced worker count, the parallel
    /// SpMM / SpGEMM (both dataflows) / CSR materialization equal their
    /// sequential twins bit-for-bit for every format — and the dense
    /// reference, which is exact on these integer-valued operands.
    #[test]
    fn parallel_matrix_kernels_are_bitwise_sequential(
        a in arb_sparse(11, 9, 50),
        bs in arb_sparse(9, 8, 45),
        bd in arb_dense(9, 5),
    ) {
        let spmm_expect = gemm_naive(&a.clone().into_dense(), &bd);
        let spgemm_expect = gemm_naive(&a.clone().into_dense(), &bs.clone().into_dense());
        for fmt in matrix_formats() {
            let da = MatrixData::encode(&a, &fmt).unwrap();
            let db = MatrixData::encode(&bs, &fmt).unwrap();
            let seq_spmm = spmm_via_stream(&da, &bd).unwrap();
            prop_assert_eq!(&seq_spmm, &spmm_expect, "{} sequential SpMM", fmt);
            let seq_gus = spgemm_with(&da, &db, SpgemmAlgo::Gustavson).unwrap();
            let seq_row = spgemm_with(&da, &db, SpgemmAlgo::RowWise).unwrap();
            prop_assert_eq!(seq_gus.to_dense(), spgemm_expect.clone(), "{} sequential SpGEMM", fmt);
            let seq_csr = csr_from_stream(a.rows(), a.cols(), da.row_stream());
            for workers in WORKER_COUNTS {
                with_workers(workers, || {
                    assert_eq!(
                        spmm_parallel(&da, &bd).unwrap(),
                        seq_spmm,
                        "{fmt} SpMM diverged at {workers} workers"
                    );
                    assert_eq!(
                        spgemm_parallel_with(&da, &db, SpgemmAlgo::Gustavson).unwrap(),
                        seq_gus,
                        "{fmt} Gustavson SpGEMM diverged at {workers} workers"
                    );
                    assert_eq!(
                        spgemm_parallel_with(&da, &db, SpgemmAlgo::RowWise).unwrap(),
                        seq_row,
                        "{fmt} row-wise SpGEMM diverged at {workers} workers"
                    );
                    assert_eq!(
                        csr_from_stream_parallel(a.rows(), a.cols(), da.row_stream()),
                        seq_csr,
                        "{fmt} CSR materialization diverged at {workers} workers"
                    );
                });
            }
        }
    }

    /// Phase-2 for tensors: parallel MTTKRP and SpTTM equal their
    /// sequential twins bit-for-bit for every format at every forced
    /// worker count — and the exact dense reference.
    #[test]
    fn parallel_tensor_kernels_are_bitwise_sequential(
        t in arb_tensor(5, 4, 6, 36),
        b in arb_dense(4, 5),
        c in arb_dense(6, 5),
        bz in arb_dense(6, 4),
    ) {
        let mttkrp_expect = naive_mttkrp(&t, &b, &c);
        let spttm_expect = naive_spttm(&t, &bz);
        for fmt in tensor_formats() {
            let data = TensorData::encode(&t, &fmt).unwrap();
            let seq_mttkrp = mttkrp_via_stream(&data, &b, &c).unwrap();
            let seq_spttm = spttm_via_stream(&data, &bz).unwrap();
            prop_assert_eq!(&seq_mttkrp, &mttkrp_expect, "{} sequential MTTKRP", fmt);
            prop_assert_eq!(&seq_spttm, &spttm_expect, "{} sequential SpTTM", fmt);
            for workers in WORKER_COUNTS {
                with_workers(workers, || {
                    assert_eq!(
                        mttkrp_parallel(&data, &b, &c).unwrap(),
                        seq_mttkrp,
                        "{fmt} MTTKRP diverged at {workers} workers"
                    );
                    assert_eq!(
                        spttm_parallel(&data, &bz).unwrap(),
                        seq_spttm,
                        "{fmt} SpTTM diverged at {workers} workers"
                    );
                });
            }
        }
    }
}

/// Allocation-free ranged fold (the closure must not touch the heap, or
/// the zero-alloc assertion would blame the traversal for it).
fn matrix_range_checksum(
    data: &MatrixData,
    range: std::ops::Range<usize>,
    arena: &mut StreamArena,
) -> f64 {
    let mut acc = 0.0f64;
    data.row_stream()
        .for_each_fiber_range_in(range, arena, &mut |r, cols, vals| {
            acc += (r + cols.len()) as f64;
            for &v in vals {
                acc += v;
            }
        });
    acc
}

fn tensor_range_checksum(
    data: &TensorData,
    range: std::ops::Range<usize>,
    arena: &mut StreamArena,
) -> f64 {
    let mut acc = 0.0f64;
    data.fiber_stream()
        .for_each_fiber_range_in(range, arena, &mut |x, y, zs, vals| {
            acc += (x + y + zs.len()) as f64;
            for &v in vals {
                acc += v;
            }
        });
    acc
}

/// The per-worker arena contract behind every parallel kernel: once a
/// worker's arena has seen its range, re-streaming that range allocates
/// nothing — for every format, with the worker loop simulated serially
/// so thread-spawn bookkeeping cannot pollute the count.
#[test]
fn warm_worker_arenas_never_allocate_per_range() {
    assert!(allocs::probe_installed(), "counting allocator installed");
    let a = CooMatrix::from_triplets(
        24,
        30,
        (0..120)
            .map(|i| ((i * 7) % 24, (i * 13) % 30, (i % 9) as f64 - 4.0))
            .collect(),
    )
    .unwrap();
    let t = CooTensor3::from_quads(
        8,
        7,
        9,
        (0..90)
            .map(|i| ((i * 3) % 8, (i * 5) % 7, (i * 11) % 9, (i % 7) as f64 - 3.0))
            .collect(),
    )
    .unwrap();
    for fmt in matrix_formats() {
        let data = MatrixData::encode(&a, &fmt).unwrap();
        let ranges = data.row_stream().row_partition(3);
        let mut arenas: Vec<StreamArena> = ranges.iter().map(|_| StreamArena::new()).collect();
        for (r, arena) in ranges.iter().zip(arenas.iter_mut()) {
            let warm = matrix_range_checksum(&data, r.clone(), arena);
            let (n, steady) =
                allocs::count_allocs(|| matrix_range_checksum(&data, r.clone(), arena));
            assert_eq!(warm, steady, "{fmt} range {r:?}: passes must agree");
            assert_eq!(
                n, 0,
                "{fmt} range {r:?}: steady-state ranged traversal allocated"
            );
        }
    }
    for fmt in tensor_formats() {
        let data = TensorData::encode(&t, &fmt).unwrap();
        let ranges = data.fiber_stream().fiber_partition(3);
        let mut arenas: Vec<StreamArena> = ranges.iter().map(|_| StreamArena::new()).collect();
        for (r, arena) in ranges.iter().zip(arenas.iter_mut()) {
            let warm = tensor_range_checksum(&data, r.clone(), arena);
            let (n, steady) =
                allocs::count_allocs(|| tensor_range_checksum(&data, r.clone(), arena));
            assert_eq!(warm, steady, "{fmt} range {r:?}: passes must agree");
            assert_eq!(
                n, 0,
                "{fmt} range {r:?}: steady-state ranged traversal allocated"
            );
        }
    }
}

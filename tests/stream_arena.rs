//! Arena-backed streaming properties — the acceptance suite for the
//! zero-alloc traversal redesign.
//!
//! This test binary installs the counting global allocator from
//! `sparseflex_bench::allocs`, so it can assert the tentpole claim
//! directly: after one warm-up traversal grows the [`StreamArena`] to a
//! format's high-water mark, subsequent traversals of **every** matrix
//! and tensor format perform *zero* heap allocations. Alongside, a
//! proptest pins the semantic half of the contract: the arena-backed
//! stream emits exactly the same fiber sequence as the arena-less
//! convenience path, even when one arena is shared dirty across formats
//! and passes.

use proptest::prelude::*;
use sparseflex::formats::{
    csr_from_stream, csr_from_stream_in, CooMatrix, CooTensor3, MatrixData, MatrixFormat,
    StreamArena, TensorData, TensorFormat,
};
use sparseflex_bench::allocs;

#[global_allocator]
static ALLOC: allocs::CountingAllocator = allocs::CountingAllocator;

/// Every matrix format variant (block/run parameters exercise ragged
/// edges).
fn matrix_formats() -> Vec<MatrixFormat> {
    vec![
        MatrixFormat::Dense,
        MatrixFormat::Coo,
        MatrixFormat::Csr,
        MatrixFormat::Csc,
        MatrixFormat::Bsr { br: 3, bc: 2 },
        MatrixFormat::Dia,
        MatrixFormat::Ell,
        MatrixFormat::Rlc { run_bits: 3 },
        MatrixFormat::Zvc,
    ]
}

/// Every tensor format variant.
fn tensor_formats() -> Vec<TensorFormat> {
    vec![
        TensorFormat::Dense,
        TensorFormat::Coo,
        TensorFormat::Csf,
        TensorFormat::HiCoo { block: 2 },
        TensorFormat::Rlc { run_bits: 3 },
        TensorFormat::Zvc,
    ]
}

type MatrixFibers = Vec<(usize, Vec<usize>, Vec<f64>)>;
type TensorFibers = Vec<(usize, usize, Vec<usize>, Vec<f64>)>;

fn matrix_fibers_in(data: &MatrixData, arena: &mut StreamArena) -> MatrixFibers {
    let mut out = Vec::new();
    data.row_stream()
        .for_each_fiber_in(arena, &mut |r, cols, vals| {
            out.push((r, cols.to_vec(), vals.to_vec()));
        });
    out
}

fn matrix_fibers_oneshot(data: &MatrixData) -> MatrixFibers {
    let mut out = Vec::new();
    data.row_stream().for_each_fiber(&mut |r, cols, vals| {
        out.push((r, cols.to_vec(), vals.to_vec()));
    });
    out
}

fn tensor_fibers_in(data: &TensorData, arena: &mut StreamArena) -> TensorFibers {
    let mut out = Vec::new();
    data.fiber_stream()
        .for_each_fiber_in(arena, &mut |x, y, zs, vals| {
            out.push((x, y, zs.to_vec(), vals.to_vec()));
        });
    out
}

fn tensor_fibers_oneshot(data: &TensorData) -> TensorFibers {
    let mut out = Vec::new();
    data.fiber_stream().for_each_fiber(&mut |x, y, zs, vals| {
        out.push((x, y, zs.to_vec(), vals.to_vec()));
    });
    out
}

/// Allocation-free traversal fold (the closure must not touch the heap,
/// or the zero-alloc assertion would blame the traversal for it).
fn matrix_checksum(data: &MatrixData, arena: &mut StreamArena) -> f64 {
    let mut acc = 0.0f64;
    data.row_stream()
        .for_each_fiber_in(arena, &mut |r, cols, vals| {
            acc += (r + cols.len()) as f64;
            for &v in vals {
                acc += v;
            }
        });
    acc
}

fn tensor_checksum(data: &TensorData, arena: &mut StreamArena) -> f64 {
    let mut acc = 0.0f64;
    data.fiber_stream()
        .for_each_fiber_in(arena, &mut |x, y, zs, vals| {
            acc += (x + y + zs.len()) as f64;
            for &v in vals {
                acc += v;
            }
        });
    acc
}

fn arb_sparse(rows: usize, cols: usize, max_nnz: usize) -> impl Strategy<Value = CooMatrix> {
    proptest::collection::vec(
        ((0..rows), (0..cols), -8i32..8).prop_map(|(r, c, v)| (r, c, v as f64)),
        0..max_nnz,
    )
    .prop_map(move |t| CooMatrix::from_triplets(rows, cols, t).unwrap())
}

fn arb_tensor(
    dx: usize,
    dy: usize,
    dz: usize,
    max_nnz: usize,
) -> impl Strategy<Value = CooTensor3> {
    proptest::collection::vec(
        ((0..dx), (0..dy), (0..dz), -5i32..5).prop_map(|(x, y, z, v)| (x, y, z, v as f64)),
        0..max_nnz,
    )
    .prop_map(move |q| CooTensor3::from_quads(dx, dy, dz, q).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn arena_backed_streams_match_one_shot_streams(
        a in arb_sparse(9, 11, 44),
        t in arb_tensor(5, 4, 6, 30),
    ) {
        // One arena, shared dirty across every format and two passes
        // each: the buffers a previous format left behind must never
        // leak into the next format's emitted fibers.
        let mut arena = StreamArena::new();
        for fmt in matrix_formats() {
            let data = MatrixData::encode(&a, &fmt).unwrap();
            let expect = matrix_fibers_oneshot(&data);
            for pass in 0..2 {
                prop_assert_eq!(
                    &matrix_fibers_in(&data, &mut arena),
                    &expect,
                    "matrix {} pass {}",
                    fmt,
                    pass
                );
            }
        }
        for fmt in tensor_formats() {
            let data = TensorData::encode(&t, &fmt).unwrap();
            let expect = tensor_fibers_oneshot(&data);
            for pass in 0..2 {
                prop_assert_eq!(
                    &tensor_fibers_in(&data, &mut arena),
                    &expect,
                    "tensor {} pass {}",
                    fmt,
                    pass
                );
            }
        }
    }
}

#[test]
fn warm_arena_traversals_never_allocate() {
    assert!(allocs::probe_installed(), "counting allocator installed");
    let a = CooMatrix::from_triplets(
        24,
        30,
        (0..120)
            .map(|i| ((i * 7) % 24, (i * 13) % 30, (i % 9) as f64 - 4.0))
            .collect(),
    )
    .unwrap();
    let t = CooTensor3::from_quads(
        8,
        7,
        9,
        (0..90)
            .map(|i| ((i * 3) % 8, (i * 5) % 7, (i * 11) % 9, (i % 7) as f64 - 3.0))
            .collect(),
    )
    .unwrap();
    for fmt in matrix_formats() {
        let data = MatrixData::encode(&a, &fmt).unwrap();
        let mut arena = StreamArena::new();
        let warm = matrix_checksum(&data, &mut arena);
        let (allocs_steady, steady) = allocs::count_allocs(|| matrix_checksum(&data, &mut arena));
        assert_eq!(warm, steady, "{fmt}: passes must agree");
        assert_eq!(allocs_steady, 0, "{fmt}: steady-state traversal allocated");
    }
    for fmt in tensor_formats() {
        let data = TensorData::encode(&t, &fmt).unwrap();
        let mut arena = StreamArena::new();
        let warm = tensor_checksum(&data, &mut arena);
        let (allocs_steady, steady) = allocs::count_allocs(|| tensor_checksum(&data, &mut arena));
        assert_eq!(warm, steady, "{fmt}: passes must agree");
        assert_eq!(allocs_steady, 0, "{fmt}: steady-state traversal allocated");
    }
}

#[test]
fn csr_materialization_with_recycling_never_allocates_steady_state() {
    let a = CooMatrix::from_triplets(
        24,
        30,
        (0..120)
            .map(|i| ((i * 7) % 24, (i * 13) % 30, (i % 9) as f64 - 4.0))
            .collect(),
    )
    .unwrap();
    let data = MatrixData::encode(&a, &MatrixFormat::Csc).unwrap();
    let expect = csr_from_stream(24, 30, data.row_stream());
    let mut arena = StreamArena::new();
    // Warm-up cycle: build once, hand the triple back.
    let warm = csr_from_stream_in(&mut arena, 24, 30, data.row_stream());
    assert_eq!(warm, expect, "arena-backed build must match arena-less");
    arena.recycle_csr(warm);
    let (n, rebuilt) = allocs::count_allocs(|| {
        let c = csr_from_stream_in(&mut arena, 24, 30, data.row_stream());
        let ok = c == expect;
        arena.recycle_csr(c);
        ok
    });
    assert!(rebuilt, "recycled rebuild must still match");
    assert_eq!(n, 0, "steady-state CSR materialization allocated");
}

//! Cross-format property suite for the streaming kernel API: every
//! format-generic kernel, over **every** `MatrixFormat` / `TensorFormat`
//! variant, must match the dense reference result bit-for-bit on the
//! integer-valued fixtures proptest generates (integer arithmetic in f64
//! is exact, so any divergence is a traversal or dispatch bug, not
//! rounding).
//!
//! This is the acceptance gate for the fiber-stream redesign: a format
//! whose `RowMajorStream` / `FiberStream3` implementation dropped,
//! duplicated, or reordered an element fails here immediately, as does a
//! fast-path specialization that disagrees with the generic stream path.

use proptest::prelude::*;
use sparseflex::formats::{
    CooMatrix, CooTensor3, DenseMatrix, MatrixData, MatrixFormat, SparseMatrix, TensorData,
    TensorFormat,
};
use sparseflex::kernels::gemm::gemm_naive;
use sparseflex::kernels::{
    mttkrp, mttkrp_via_stream, spgemm, spmm, spmm_sparse_b, spmm_via_stream, spmv, spmv_via_stream,
    spttm, spttm_via_stream,
};

/// Every matrix format variant (structural parameters chosen to exercise
/// ragged block edges and saturating RLC runs).
fn matrix_formats() -> Vec<MatrixFormat> {
    vec![
        MatrixFormat::Dense,
        MatrixFormat::Coo,
        MatrixFormat::Csr,
        MatrixFormat::Csc,
        MatrixFormat::Bsr { br: 3, bc: 2 },
        MatrixFormat::Dia,
        MatrixFormat::Ell,
        MatrixFormat::Rlc { run_bits: 3 },
        MatrixFormat::Zvc,
    ]
}

/// Every tensor format variant.
fn tensor_formats() -> Vec<TensorFormat> {
    vec![
        TensorFormat::Dense,
        TensorFormat::Coo,
        TensorFormat::Csf,
        TensorFormat::HiCoo { block: 2 },
        TensorFormat::Rlc { run_bits: 3 },
        TensorFormat::Zvc,
    ]
}

fn arb_sparse(rows: usize, cols: usize, max_nnz: usize) -> impl Strategy<Value = CooMatrix> {
    proptest::collection::vec(
        ((0..rows), (0..cols), -8i32..8).prop_map(|(r, c, v)| (r, c, v as f64)),
        0..max_nnz,
    )
    .prop_map(move |t| CooMatrix::from_triplets(rows, cols, t).unwrap())
}

fn arb_dense(rows: usize, cols: usize) -> impl Strategy<Value = DenseMatrix> {
    proptest::collection::vec(-8i32..8, rows * cols).prop_map(move |v| {
        DenseMatrix::from_vec(rows, cols, v.into_iter().map(|x| x as f64).collect()).unwrap()
    })
}

fn arb_tensor(
    dx: usize,
    dy: usize,
    dz: usize,
    max_nnz: usize,
) -> impl Strategy<Value = CooTensor3> {
    proptest::collection::vec(
        ((0..dx), (0..dy), (0..dz), -5i32..5).prop_map(|(x, y, z, v)| (x, y, z, v as f64)),
        0..max_nnz,
    )
    .prop_map(move |q| CooTensor3::from_quads(dx, dy, dz, q).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn spmv_matches_dense_reference_in_every_format(
        a in arb_sparse(9, 11, 40),
        x in proptest::collection::vec(-8i32..8, 11),
    ) {
        let xf: Vec<f64> = x.into_iter().map(|v| v as f64).collect();
        let dense = a.clone().into_dense();
        let expect: Vec<f64> = (0..9)
            .map(|r| (0..11).map(|c| dense.get(r, c) * xf[c]).sum())
            .collect();
        for fmt in matrix_formats() {
            let data = MatrixData::encode(&a, &fmt).unwrap();
            prop_assert_eq!(&spmv(&data, &xf).unwrap(), &expect, "spmv({})", fmt);
            prop_assert_eq!(
                &spmv_via_stream(&data, &xf).unwrap(),
                &expect,
                "spmv_via_stream({})",
                fmt
            );
        }
    }

    #[test]
    fn spmm_matches_dense_reference_in_every_format(
        a in arb_sparse(10, 8, 36),
        b in arb_dense(8, 5),
    ) {
        let expect = gemm_naive(&a.clone().into_dense(), &b);
        for fmt in matrix_formats() {
            let data = MatrixData::encode(&a, &fmt).unwrap();
            prop_assert_eq!(spmm(&data, &b).unwrap(), expect.clone(), "spmm({})", fmt);
            prop_assert_eq!(
                spmm_via_stream(&data, &b).unwrap(),
                expect.clone(),
                "spmm_via_stream({})",
                fmt
            );
        }
    }

    #[test]
    fn spmm_sparse_b_matches_dense_reference_in_every_format(
        a in arb_dense(6, 10),
        b in arb_sparse(10, 7, 32),
    ) {
        let expect = gemm_naive(&a, &b.clone().into_dense());
        for fmt in matrix_formats() {
            let data = MatrixData::encode(&b, &fmt).unwrap();
            prop_assert_eq!(
                spmm_sparse_b(&a, &data).unwrap(),
                expect.clone(),
                "spmm_sparse_b({})",
                fmt
            );
        }
    }

    #[test]
    fn spgemm_matches_dense_reference_in_every_format(
        a in arb_sparse(8, 9, 30),
        b in arb_sparse(9, 7, 30),
    ) {
        let expect = gemm_naive(&a.clone().into_dense(), &b.clone().into_dense());
        // Vary A across every format against CSR B (the stationary side
        // Gustavson indexes), then vary B across every format with both
        // operands in the same format — covering each variant on each side.
        let b_csr = MatrixData::encode(&b, &MatrixFormat::Csr).unwrap();
        for fmt in matrix_formats() {
            let a_data = MatrixData::encode(&a, &fmt).unwrap();
            prop_assert_eq!(
                spgemm(&a_data, &b_csr).unwrap().to_dense(),
                expect.clone(),
                "spgemm({}, CSR)",
                fmt
            );
            let b_data = MatrixData::encode(&b, &fmt).unwrap();
            prop_assert_eq!(
                spgemm(&a_data, &b_data).unwrap().to_dense(),
                expect.clone(),
                "spgemm({fmt}, {fmt})",
                fmt = fmt
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn spttm_matches_dense_reference_in_every_format(
        t in arb_tensor(5, 4, 6, 28),
        factor in proptest::collection::vec(-5i32..5, 6 * 3),
    ) {
        let f =
            DenseMatrix::from_vec(6, 3, factor.into_iter().map(|v| v as f64).collect()).unwrap();
        let dense = t.clone().into_dense();
        let mut expect = sparseflex::formats::tensor::DenseTensor3::zeros(5, 4, 3);
        for x in 0..5 {
            for y in 0..4 {
                for j in 0..3 {
                    let acc: f64 = (0..6)
                        .map(|z| {
                            sparseflex::formats::SparseTensor3::get(&dense, x, y, z) * f.get(z, j)
                        })
                        .sum();
                    expect.set(x, y, j, acc);
                }
            }
        }
        for fmt in tensor_formats() {
            let data = TensorData::encode(&t, &fmt).unwrap();
            prop_assert_eq!(spttm(&data, &f).unwrap(), expect.clone(), "spttm({})", fmt);
            prop_assert_eq!(
                spttm_via_stream(&data, &f).unwrap(),
                expect.clone(),
                "spttm_via_stream({})",
                fmt
            );
        }
    }

    #[test]
    fn mttkrp_matches_dense_reference_in_every_format(
        t in arb_tensor(5, 4, 6, 28),
        bm in proptest::collection::vec(-5i32..5, 4 * 3),
        cm in proptest::collection::vec(-5i32..5, 6 * 3),
    ) {
        let b = DenseMatrix::from_vec(4, 3, bm.into_iter().map(|v| v as f64).collect()).unwrap();
        let c = DenseMatrix::from_vec(6, 3, cm.into_iter().map(|v| v as f64).collect()).unwrap();
        let dense = t.clone().into_dense();
        let mut expect = DenseMatrix::zeros(5, 3);
        for i in 0..5 {
            for j in 0..3 {
                let mut acc = 0.0;
                for k in 0..4 {
                    for l in 0..6 {
                        acc += sparseflex::formats::SparseTensor3::get(&dense, i, k, l)
                            * b.get(k, j)
                            * c.get(l, j);
                    }
                }
                expect.set(i, j, acc);
            }
        }
        for fmt in tensor_formats() {
            let data = TensorData::encode(&t, &fmt).unwrap();
            prop_assert_eq!(
                mttkrp(&data, &b, &c).unwrap(),
                expect.clone(),
                "mttkrp({})",
                fmt
            );
            prop_assert_eq!(
                mttkrp_via_stream(&data, &b, &c).unwrap(),
                expect.clone(),
                "mttkrp_via_stream({})",
                fmt
            );
        }
    }
}

//! Integration test: the Fig. 6 walkthrough reproduced end-to-end
//! through the public API — the paper's own worked example is the
//! ground truth for the cycle model.

use sparseflex::accel::exec::simulate_ws;
use sparseflex::accel::AccelConfig;
use sparseflex::formats::{CooMatrix, MatrixData, MatrixFormat};
use sparseflex::kernels::gemm::gemm_naive;

fn matrix_a() -> CooMatrix {
    // Matrix A (4x8): A@(0,0), B@(0,2), C@(0,4), H@(3,5).
    CooMatrix::from_triplets(
        4,
        8,
        vec![(0, 0, 1.0), (0, 2, 2.0), (0, 4, 3.0), (3, 5, 8.0)],
    )
    .unwrap()
}

fn matrix_b() -> CooMatrix {
    // Matrix B (8x4): a, d, b, f, c, g, h, e at the Fig. 6 positions.
    CooMatrix::from_triplets(
        8,
        4,
        vec![
            (0, 0, 1.0),
            (0, 1, 4.0),
            (2, 0, 2.0),
            (3, 2, 6.0),
            (4, 0, 3.0),
            (5, 2, 7.0),
            (5, 3, 8.0),
            (7, 1, 5.0),
        ],
    )
    .unwrap()
}

fn run(fa: MatrixFormat, fb: MatrixFormat) -> sparseflex::accel::SimResult {
    let cfg = AccelConfig::walkthrough();
    simulate_ws(
        &MatrixData::encode(&matrix_a(), &fa).unwrap(),
        &MatrixData::encode(&matrix_b(), &fb).unwrap(),
        &cfg,
    )
    .expect("walkthrough ACFs supported")
}

#[test]
fn dense_dense_takes_8_cycles_to_stream_a() {
    assert_eq!(
        run(MatrixFormat::Dense, MatrixFormat::Dense)
            .cycles
            .stream_a,
        8
    );
}

#[test]
fn csr_csc_takes_3_cycles_to_stream_a() {
    assert_eq!(run(MatrixFormat::Csr, MatrixFormat::Csc).cycles.stream_a, 3);
}

#[test]
fn coo_dense_takes_4_cycles_to_stream_a() {
    assert_eq!(
        run(MatrixFormat::Coo, MatrixFormat::Dense).cycles.stream_a,
        4
    );
}

#[test]
fn all_three_walkthrough_runs_compute_the_same_product() {
    let expect = gemm_naive(&matrix_a().into_dense(), &matrix_b().into_dense());
    for (fa, fb) in [
        (MatrixFormat::Dense, MatrixFormat::Dense),
        (MatrixFormat::Csr, MatrixFormat::Csc),
        (MatrixFormat::Coo, MatrixFormat::Dense),
    ] {
        assert_eq!(run(fa, fb).output, expect, "{fa}-{fb}");
    }
}

#[test]
fn acf_ordering_matches_fig6_takeaway() {
    // "ACFs affect both buffer utilization and data streaming latency":
    // for this sparse A, CSR streams fastest, COO second, Dense slowest.
    let dense = run(MatrixFormat::Dense, MatrixFormat::Dense)
        .cycles
        .stream_a;
    let coo = run(MatrixFormat::Coo, MatrixFormat::Dense).cycles.stream_a;
    let csr = run(MatrixFormat::Csr, MatrixFormat::Csc).cycles.stream_a;
    assert!(csr < coo && coo < dense);
}

#[test]
fn buffer_pressure_matches_fig6_stations() {
    // Dense B loads 8 elements per PE (full column); CSC B loads
    // 2 * nnz_col pairs — e.g. column 0 holds 3 nonzeros -> 6 slots.
    let cfg = AccelConfig::walkthrough();
    let b_dense = MatrixData::encode(&matrix_b(), &MatrixFormat::Dense).unwrap();
    let b_csc = MatrixData::encode(&matrix_b(), &MatrixFormat::Csc).unwrap();
    let a = MatrixData::encode(&matrix_a(), &MatrixFormat::Csr).unwrap();
    let dense_run = simulate_ws(&a, &b_dense, &cfg).unwrap();
    let csc_run = simulate_ws(&a, &b_csc, &cfg).unwrap();
    // Dense stations write 4 cols x 8 = 32 slots; CSC writes 2*8 = 16.
    assert_eq!(dense_run.counts.pe_buffer_writes, 32);
    assert_eq!(csc_run.counts.pe_buffer_writes, 16);
}

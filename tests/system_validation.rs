//! System-level validation: the analytic models agree with the
//! cycle-accurate simulator, SAGE's recommendation is optimal within its
//! search space, and the full SAGE -> MINT -> accelerator pipeline
//! computes correct products on random workloads.

use proptest::prelude::*;
use sparseflex::accel::exec::simulate_ws;
use sparseflex::accel::model::{ws_estimate, WsWorkload};
use sparseflex::accel::AccelConfig;
use sparseflex::formats::{CooMatrix, DataType, MatrixData, MatrixFormat, SparseMatrix};
use sparseflex::kernels::gemm::gemm_naive;
use sparseflex::sage::eval::ConversionMode;
use sparseflex::sage::{FormatChoice, Sage, SageWorkload};
use sparseflex::system::FlexSystem;

fn arb_operands() -> impl Strategy<Value = (CooMatrix, CooMatrix)> {
    (2usize..24, 2usize..32, 2usize..16, 1usize..60, 1usize..60).prop_flat_map(
        |(m, k, n, na, nb)| {
            let a = proptest::collection::vec(
                ((0..m), (0..k), 1i32..9).prop_map(|(r, c, v)| (r, c, v as f64)),
                1..na.max(2),
            )
            .prop_map(move |t| CooMatrix::from_triplets(m, k, t).unwrap());
            let b = proptest::collection::vec(
                ((0..k), (0..n), 1i32..9).prop_map(|(r, c, v)| (r, c, v as f64)),
                1..nb.max(2),
            )
            .prop_map(move |t| CooMatrix::from_triplets(k, n, t).unwrap());
            (a, b)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn full_pipeline_computes_correct_product((a, b) in arb_operands()) {
        let w = SageWorkload::spgemm(
            a.rows(), a.cols(), b.cols(),
            a.nnz() as u64, b.nnz() as u64,
            DataType::Fp32,
        );
        let mut sys = FlexSystem::default();
        sys.sage.accel.num_pes = 8;
        sys.sage.accel.pe_buffer_elems = 32;
        let run = sys.run_functional(&a, &b, &w).unwrap();
        let expect = gemm_naive(&a.clone().into_dense(), &b.clone().into_dense());
        prop_assert!(
            run.sim.output.approx_eq(&expect, 1e-9),
            "wrong product under choice {}", run.evaluation().choice
        );
    }

    #[test]
    fn simulator_and_model_track_each_other((a, b) in arb_operands()) {
        // Analytic stream-cycle estimates must stay within a generous
        // constant factor of the cycle-accurate simulator for the
        // CSR(A)-Dense(B) pair (the most used ACF in Table III).
        let cfg = AccelConfig { num_pes: 8, pe_buffer_elems: 32, ..AccelConfig::walkthrough() };
        let b_dense = CooMatrix::from_triplets(
            b.rows(), b.cols(),
            (0..b.rows()).flat_map(|r| (0..b.cols()).map(move |c| (r, c, 1.0))).collect(),
        ).unwrap();
        let sim = simulate_ws(
            &MatrixData::encode(&a, &MatrixFormat::Csr).unwrap(),
            &MatrixData::encode(&b_dense, &MatrixFormat::Dense).unwrap(),
            &cfg,
        ).unwrap();
        let est = ws_estimate(&WsWorkload {
            m: a.rows(), k: a.cols(), n: b.cols(),
            nnz_a: a.nnz() as u64,
            nnz_b: (b.rows() * b.cols()) as u64,
            acf_a: MatrixFormat::Csr,
            acf_b: MatrixFormat::Dense,
        }, &cfg).unwrap();
        let sim_total = sim.cycles.total() as f64;
        let est_total = est.cycles.total();
        prop_assert!(
            est_total > sim_total * 0.25 && est_total < sim_total * 4.0,
            "model {est_total} vs simulator {sim_total}"
        );
    }
}

#[test]
fn sage_recommendation_is_minimal_over_dense_grid() {
    // Exhaustively re-evaluate a moderate grid and confirm nothing beats
    // the recommendation (the SAGE invariant at system level).
    let sage = Sage::default();
    let w = SageWorkload::spgemm(800, 600, 400, 24_000, 12_000, DataType::Fp32);
    let best = sage.recommend(&w).best;
    let best_edp = best.edp(sage.accel.clock_hz);
    let mut checked = 0;
    for mcf_a in MatrixFormat::mcf_set() {
        for mcf_b in MatrixFormat::mcf_set() {
            for acf_a in [
                MatrixFormat::Dense,
                MatrixFormat::Csr,
                MatrixFormat::Coo,
                MatrixFormat::Csc,
            ] {
                for acf_b in [MatrixFormat::Dense, MatrixFormat::Csc] {
                    let c = FormatChoice {
                        mcf_a,
                        mcf_b,
                        acf_a,
                        acf_b,
                    };
                    if let Ok(e) = sage.evaluate(&w, &c, ConversionMode::Hardware) {
                        assert!(
                            e.edp(sage.accel.clock_hz) >= best_edp * 0.999,
                            "{c} beats the recommendation"
                        );
                        checked += 1;
                    }
                }
            }
        }
    }
    assert!(checked > 200, "grid only checked {checked} points");
}

#[test]
fn flexible_system_dominates_on_every_table3_matrix_workload() {
    use sparseflex::workloads::TABLE_III;
    let sys = FlexSystem::default();
    for spec in TABLE_III.iter().filter(|s| !s.is_tensor()) {
        let sparseflex::workloads::WorkloadShape::Matrix { rows: m, cols: k } = spec.shape else {
            continue;
        };
        let (_, fc) = spec.factor_dims();
        let w = SageWorkload::spmm(m, k, fc, spec.nnz as u64, DataType::Fp32);
        for (class, norm) in sys.normalized_edp(&w) {
            if let Some(x) = norm {
                assert!(
                    x >= 0.999,
                    "{class} beats this work on {} (x={x})",
                    spec.name
                );
            }
        }
    }
}

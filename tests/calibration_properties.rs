//! Calibration-loop properties: the online `Calibrator` must version
//! the plan cache (a generation bump invalidates exactly the stale
//! rows), stamp plans with the generation they were made under, tighten
//! predicted-vs-measured error over repeated traffic, and survive the
//! JSON trace round-trip that warm-starts a fresh process.

use sparseflex::formats::{DataType, SparseMatrix};
use sparseflex::sage::SageWorkload;
use sparseflex::system::{
    read_traces, write_traces, Calibrator, FlexSystem, PlanDiscipline, StoredTrace,
};
use sparseflex::workloads::synth::random_matrix;

fn small_system() -> FlexSystem {
    let mut sys = FlexSystem::default();
    sys.sage.accel.num_pes = 8;
    sys.sage.accel.pe_buffer_elems = 64;
    sys
}

/// A recalibration bump changes every new cache key, so exactly the
/// rows planned under older coefficients go stale: the first lookup per
/// shape after the bump misses and replans, the second hits again — all
/// asserted through the cache's hit/miss counters.
#[test]
fn calibration_generation_bump_invalidates_exactly_the_stale_rows() {
    let sys = small_system();
    let w1 = SageWorkload::spgemm(100, 100, 50, 1_000, 500, DataType::Fp32);
    let w2 = SageWorkload::spgemm(120, 100, 50, 1_200, 500, DataType::Fp32);

    sys.planner.evaluate_cached(&sys.sage, &w1); // miss
    sys.planner.evaluate_cached(&sys.sage, &w2); // miss
    sys.planner.evaluate_cached(&sys.sage, &w1); // hit
    let before = sys.planner.cache.counters();
    assert_eq!((before.hits, before.misses), (1, 2));

    sys.planner.calibrator.recalibrate();
    assert_eq!(sys.planner.calibrator.generation(), 1);

    // Every pre-bump row is stale: one miss per shape, then hits again.
    sys.planner.evaluate_cached(&sys.sage, &w1); // miss (stale)
    sys.planner.evaluate_cached(&sys.sage, &w2); // miss (stale)
    sys.planner.evaluate_cached(&sys.sage, &w1); // hit (fresh row)
    let delta = sys.planner.cache.counters().since(before);
    assert_eq!(
        (delta.hits, delta.misses),
        (1, 2),
        "exactly the stale rows must miss once each"
    );
    // Stale rows linger until LRU evicts them; the generations coexist.
    assert_eq!(sys.planner.cache.len(), 4);
}

/// Plans carry the calibration generation they were made under, and
/// `explain()` prints it.
#[test]
fn plans_record_and_explain_their_calibration_generation() {
    let sys = small_system();
    let a = random_matrix(32, 32, 300, 1);
    let b = random_matrix(32, 24, 200, 2);
    let w = SageWorkload::spgemm(32, 32, 24, a.nnz() as u64, b.nnz() as u64, DataType::Fp32);

    let plan = sys
        .planner
        .plan_job(&sys.sage, &a, &b, &w, PlanDiscipline::Pipelined)
        .expect("plans");
    assert_eq!(plan.calibration_generation, 0);
    assert!(
        plan.explain().contains("calibration: generation 0"),
        "{}",
        plan.explain()
    );

    sys.planner.calibrator.recalibrate();
    let replanned = sys
        .planner
        .plan_job(&sys.sage, &a, &b, &w, PlanDiscipline::Pipelined)
        .expect("replans");
    assert!(!replanned.from_cache, "generation bump must force a replan");
    assert_eq!(replanned.calibration_generation, 1);
    assert!(
        replanned.explain().contains("calibration: generation 1"),
        "{}",
        replanned.explain()
    );
}

/// Repeated traffic through plan → execute → recalibrate rounds makes
/// the stats model's mean predicted-vs-measured cycle error strictly
/// lower than the uncalibrated model's (the ISSUE acceptance bar, with
/// 3 calibration rounds).
#[test]
fn three_calibration_rounds_strictly_tighten_prediction_error() {
    let sys = small_system();
    let operands: Vec<_> = [(40usize, 40usize, 32usize, 500usize), (48, 56, 32, 300)]
        .iter()
        .enumerate()
        .map(|(i, &(m, k, n, nnz))| {
            let a = random_matrix(m, k, nnz, 10 + i as u64);
            let b = random_matrix(k, n, nnz / 2 + 1, 20 + i as u64);
            let w = SageWorkload::spgemm(m, k, n, a.nnz() as u64, b.nnz() as u64, DataType::Fp32);
            (a, b, w)
        })
        .collect();

    let mut errors = Vec::new();
    for round in 0..=3 {
        assert_eq!(sys.planner.calibrator.generation(), round);
        let mut err = 0.0;
        for (a, b, w) in &operands {
            let plan = sys
                .planner
                .plan_job(&sys.sage, a, b, w, PlanDiscipline::Pipelined)
                .expect("plans");
            let run = sys
                .planner
                .execute_plan(&sys.sage, &plan, a, b)
                .expect("executes");
            err += run.trace.mean_cycle_error();
        }
        errors.push(err / operands.len() as f64);
        sys.planner.calibrator.recalibrate();
    }
    assert!(
        errors[3] < errors[0],
        "calibrated error must be strictly lower: {errors:?}"
    );
}

/// Executed traces round-trip through the JSON file format, and a fresh
/// calibrator warm-started from the reloaded file refits to exactly the
/// coefficients the live calibrator fit from the same traffic.
#[test]
fn trace_file_round_trip_warm_starts_an_equal_calibrator() {
    let sys = small_system();
    let a = random_matrix(40, 40, 420, 5);
    let b = random_matrix(40, 32, 280, 6);
    let w = SageWorkload::spgemm(40, 40, 32, a.nnz() as u64, b.nnz() as u64, DataType::Fp32);

    let mut traces = Vec::new();
    for _ in 0..3 {
        let plan = sys
            .planner
            .plan_job(&sys.sage, &a, &b, &w, PlanDiscipline::Pipelined)
            .expect("plans");
        let run = sys
            .planner
            .execute_plan(&sys.sage, &plan, &a, &b)
            .expect("executes");
        traces.push(StoredTrace {
            dataflow: plan.dataflow,
            trace: run.trace.clone(),
        });
    }

    let dir = std::env::temp_dir().join(format!("sparseflex-cal-{}", std::process::id()));
    let path = dir.join("traces.json");
    write_traces(&path, &traces).expect("traces write");
    let loaded = read_traces(&path).expect("traces read");
    assert_eq!(loaded, traces, "round-trip must preserve every field");
    let _ = std::fs::remove_dir_all(&dir);

    // The live calibrator recorded the same three runs automatically;
    // a warm-started one must refit to identical coefficients.
    let warmed = Calibrator::default();
    warmed.warm_start(&loaded);
    assert_eq!(warmed.samples(), sys.planner.calibrator.samples());
    let direct = sys.planner.calibrator.recalibrate();
    let replayed = warmed.recalibrate();
    assert_eq!(replayed, direct, "warm-start must reproduce the fit");
}

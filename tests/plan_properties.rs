//! Property suite for the planner layer: every run path executing the
//! same [`ExecutionPlan`] must produce bit-for-bit identical output to
//! the monolithic path across all nine matrix MCFs, and the
//! [`PlanTrace`] every execution yields must match the cycle-accurate
//! simulator exactly under the structure cost model and within a
//! constant factor under the stats model.

use proptest::prelude::*;
use sparseflex::formats::{CooMatrix, DataType, MatrixFormat, SparseMatrix};
use sparseflex::kernels::gemm::gemm_naive;
use sparseflex::sage::eval::ConversionMode;
use sparseflex::sage::{FormatChoice, SageWorkload};
use sparseflex::system::{BatchJob, CostModel, FlexSystem, PlanDiscipline, Planner};

fn small_system() -> FlexSystem {
    let mut sys = FlexSystem::default();
    sys.sage.accel.num_pes = 4;
    sys.sage.accel.pe_buffer_elems = 64;
    sys
}

fn spgemm_workload(a: &CooMatrix, b: &CooMatrix) -> SageWorkload {
    SageWorkload::spgemm(
        a.rows(),
        a.cols(),
        b.cols(),
        a.nnz() as u64,
        b.nnz() as u64,
        DataType::Fp32,
    )
}

fn arb_operands() -> impl Strategy<Value = (CooMatrix, CooMatrix)> {
    (2usize..16, 2usize..20, 2usize..24, 0usize..50, 0usize..70).prop_flat_map(
        |(m, k, n, na, nb)| {
            let a = proptest::collection::vec(
                ((0..m), (0..k), 1i32..9).prop_map(|(r, c, v)| (r, c, v as f64)),
                0..na.max(1) + 1,
            )
            .prop_map(move |t| CooMatrix::from_triplets(m, k, t).unwrap());
            let b = proptest::collection::vec(
                ((0..k), (0..n), 1i32..9).prop_map(|(r, c, v)| (r, c, v as f64)),
                0..nb.max(1) + 1,
            )
            .prop_map(move |t| CooMatrix::from_triplets(k, n, t).unwrap());
            (a, b)
        },
    )
}

/// Every MCF the planner must schedule without densifying.
fn mcf_suite() -> Vec<MatrixFormat> {
    vec![
        MatrixFormat::Dense,
        MatrixFormat::Coo,
        MatrixFormat::Csr,
        MatrixFormat::Csc,
        MatrixFormat::Bsr { br: 2, bc: 2 },
        MatrixFormat::Dia,
        MatrixFormat::Ell,
        MatrixFormat::Rlc { run_bits: 4 },
        MatrixFormat::Zvc,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// (a) With the evaluation pinned, the monolithic front-end
    /// (`run_with_choice`), the pipelined front-end
    /// (`run_pipelined_with_evaluation`) and a raw
    /// `plan_pinned -> execute_plan` round trip all execute the same
    /// plan and produce **bit-for-bit identical** output, for every MCF.
    #[test]
    fn every_run_path_matches_the_monolithic_output((a, b) in arb_operands()) {
        let sys = small_system();
        let w = spgemm_workload(&a, &b);
        let expect = gemm_naive(&a.clone().into_dense(), &b.clone().into_dense());
        for mcf in mcf_suite() {
            let choice = FormatChoice {
                mcf_a: MatrixFormat::Csr,
                mcf_b: mcf,
                acf_a: MatrixFormat::Csr,
                acf_b: MatrixFormat::Csc,
            };
            let eval = match sys.sage.evaluate(&w, &choice, ConversionMode::Hardware) {
                Ok(e) => e,
                // Structured MCFs can exceed hardware bounds (e.g. DIA
                // diagonal count) — planner-level rejection, not an
                // executor property.
                Err(_) => continue,
            };
            // Monolithic path (may recoverably reject oversized rows;
            // under a WS CSC ACF with 64-slot buffers it never does for
            // these operand sizes).
            let mono = sys.run_with_choice(&a, &b, eval.clone()).unwrap();
            // Pipelined front-end.
            let piped = sys
                .run_pipelined_with_evaluation(&a, &b, eval.clone(), false)
                .unwrap();
            // Raw planner round trip, pipelined discipline.
            let plan = sys
                .planner
                .plan_pinned(&sys.sage, &a, &b, w, eval, PlanDiscipline::Pipelined)
                .unwrap();
            let raw = sys.planner.execute_plan(&sys.sage, &plan, &a, &b).unwrap();
            prop_assert_eq!(&piped.output, &mono.sim.output, "pipelined diverged for MCF {}", mcf);
            prop_assert_eq!(&raw.output, &mono.sim.output, "raw executor diverged for MCF {}", mcf);
            prop_assert!(mono.sim.output.approx_eq(&expect, 1e-9), "MCF {} wrong vs oracle", mcf);
        }
    }

    /// (a, SAGE-planned) The four public entry points plan through the
    /// same cache-aware planner, so the same workload executes the same
    /// plan everywhere: functional == pipelined == batched, bit for bit.
    #[test]
    fn sage_planned_paths_agree((a, b) in arb_operands()) {
        let sys = small_system();
        let w = spgemm_workload(&a, &b);
        let mono = sys.run_functional(&a, &b, &w).unwrap();
        let piped = sys.run_pipelined(&a, &b, &w).unwrap();
        let batch = sys.run_batch(&[BatchJob { a: a.clone(), b: b.clone(), workload: w }]);
        let batched = batch.results[0].as_ref().unwrap();
        prop_assert_eq!(&piped.output, &mono.sim.output);
        prop_assert_eq!(&batched.output, &mono.sim.output);
        // The later paths reused the first search through the cache.
        prop_assert!(piped.plan_cached(), "pipelined run must hit the cache");
        prop_assert!(batched.plan_cached(), "batched run must hit the cache");
        prop_assert_eq!(
            &batched.plan.evaluation.choice,
            &mono.evaluation().choice
        );
    }

    /// (b, structure model) Planning with the dry-run structure model
    /// makes the trace exact: predicted cycles equal `accel::exec`
    /// measured cycles tile for tile, for both conversion and compute,
    /// and the predicted overlap schedule is the measured one.
    #[test]
    fn structure_model_trace_is_exact((a, b) in arb_operands()) {
        let mut sys = small_system();
        sys.planner = Planner::with_cost_model(CostModel::Structure);
        let w = spgemm_workload(&a, &b);
        let run = sys.run_pipelined(&a, &b, &w).unwrap();
        prop_assert!(run.trace.compute_exact(), "structure model must be cycle-exact");
        for t in &run.trace.tiles {
            prop_assert_eq!(t.predicted_conv_cycles, t.measured_conv_cycles);
            prop_assert_eq!(t.predicted_compute_cycles, t.measured_compute_cycles);
        }
        prop_assert_eq!(run.trace.predicted_schedule, run.trace.measured_schedule);
        prop_assert!((run.trace.compute_error_factor() - 1.0).abs() < 1e-12);
        // The monolithic path validates the same way.
        let mono = sys.run_functional(&a, &b, &w).unwrap();
        prop_assert!(mono.trace.compute_exact());
    }

    /// (b, stats model) The default analytic prediction tracks the
    /// simulator within tolerance: a constant factor when compute
    /// dominates (the regime `tests/system_validation.rs` validates the
    /// models in), or a bounded per-tile absolute error in hyper-sparse
    /// regimes where fixed fill/drain costs — which the stream model
    /// deliberately omits — dominate the few real MACs.
    #[test]
    fn stats_model_trace_is_within_tolerance((a, b) in arb_operands()) {
        let sys = small_system();
        let w = spgemm_workload(&a, &b);
        let run = sys.run_pipelined(&a, &b, &w).unwrap();
        let predicted = run.trace.predicted_compute_cycles();
        let measured = run.trace.measured_compute_cycles();
        let f = run.trace.compute_error_factor();
        let per_tile_slack = 128 * run.plan.tiles().max(1) as u64;
        prop_assert!(
            f <= 8.0 || predicted.abs_diff(measured) <= per_tile_slack,
            "stats model off by {f:.2}x and {} cycles over {} tiles \
             (predicted {predicted}, measured {measured})",
            predicted.abs_diff(measured),
            run.plan.tiles()
        );
    }
}

/// Acceptance: plan-cache reuse across two successive `run_batch` calls
/// on the same system — the second batch performs zero searches.
#[test]
fn plan_cache_hits_across_successive_batches() {
    let sys = small_system();
    let mut jobs = Vec::new();
    for i in 0..3u64 {
        let a = sparseflex::workloads::synth::random_matrix(14, 18, 50, 900 + i);
        let b = sparseflex::workloads::synth::random_matrix(18, 22, 70, 910 + i);
        jobs.push(BatchJob::spgemm(a, b, DataType::Fp32));
    }
    let first = sys.run_batch(&jobs);
    assert_eq!(first.succeeded(), 3);
    assert!(first.plans_computed >= 1, "cold shapes must search");
    let second = sys.run_batch(&jobs);
    assert_eq!(second.succeeded(), 3);
    assert!(
        second.plan_cache_hits >= 3,
        "every job of the second batch must hit the shared cache (got {})",
        second.plan_cache_hits
    );
    assert_eq!(second.plans_computed, 0, "no search may repeat");
    for (x, y) in first.results.iter().zip(&second.results) {
        assert_eq!(x.as_ref().unwrap().output, y.as_ref().unwrap().output);
    }
}

/// `ExecutionPlan::explain` renders the whole decision: workload,
/// choice, provenance, tile schedule, budget, and predicted overlap.
#[test]
fn explain_renders_the_decision() {
    let sys = small_system();
    let a = sparseflex::workloads::synth::random_matrix(20, 24, 80, 5);
    let b = sparseflex::workloads::synth::random_matrix(24, 30, 120, 6);
    let w = spgemm_workload(&a, &b);
    let plan = sys
        .planner
        .plan_job(&sys.sage, &a, &b, &w, PlanDiscipline::Pipelined)
        .unwrap();
    let text = plan.explain();
    assert!(text.contains("ExecutionPlan: SpGEMM 20x24x30"));
    assert!(text.contains("choice"));
    assert!(text.contains("searched"));
    assert!(text.contains("tiles"));
    assert!(text.contains("budget"));
    assert!(text.contains("overlap"));
    // A replanned job is marked as served from cache.
    let replanned = sys
        .planner
        .plan_job(&sys.sage, &a, &b, &w, PlanDiscipline::Pipelined)
        .unwrap();
    assert!(replanned.explain().contains("plan-cache hit"));
}

//! Smoke-level integration test over every figure/table generator: each
//! must emit a well-formed, non-trivial CSV series. (The heavyweight
//! generators with wall-clock measurement are exercised by `run_all`
//! instead.)

fn check(name: &str, rows: &[String]) {
    assert!(rows.len() >= 3, "{name}: too few rows ({})", rows.len());
    assert!(
        rows[0].starts_with('#'),
        "{name}: first row must be a comment header"
    );
    // Every non-comment, non-blank row in one block must have the same
    // column count as its block's header.
    let mut cols = None;
    for r in rows {
        if r.is_empty() || r.starts_with('#') {
            cols = None;
            continue;
        }
        let n = r.split(',').count();
        match cols {
            None => cols = Some(n),
            Some(c) => assert_eq!(c, n, "{name}: ragged row: {r}"),
        }
    }
}

#[test]
fn fig04_rows_are_well_formed() {
    check("fig04", &sparseflex_bench::fig04::rows());
}

#[test]
fn fig05_rows_are_well_formed() {
    check("fig05", &sparseflex_bench::fig05::rows());
}

#[test]
fn fig06_rows_are_well_formed() {
    check("fig06", &sparseflex_bench::fig06::rows());
}

#[test]
fn fig07_rows_are_well_formed() {
    check("fig07", &sparseflex_bench::fig07::rows());
}

#[test]
fn fig09_rows_are_well_formed() {
    check("fig09", &sparseflex_bench::fig09::rows());
}

#[test]
fn fig11_rows_are_well_formed() {
    check("fig11", &sparseflex_bench::fig11::rows());
}

#[test]
fn fig12_rows_are_well_formed() {
    check("fig12", &sparseflex_bench::fig12::rows());
}

#[test]
fn fig13_rows_are_well_formed() {
    check("fig13", &sparseflex_bench::fig13::rows());
}

#[test]
fn fig14_rows_are_well_formed() {
    check("fig14", &sparseflex_bench::fig14::rows());
}

#[test]
fn tables_are_well_formed() {
    check("table1", &sparseflex_bench::table1::rows());
    check("table2", &sparseflex_bench::table2::rows());
    check("table3", &sparseflex_bench::table3::rows());
}

#[test]
fn ablation_rows_are_well_formed() {
    check("ablation", &sparseflex_bench::ablation::rows());
}

#[test]
fn pipeline_rows_are_well_formed() {
    check("pipeline", &sparseflex_bench::pipeline::rows());
}

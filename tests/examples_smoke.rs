//! Smoke test pinning the umbrella crate's public API surface: the exact
//! call sequence of `examples/quickstart.rs` (plan -> run_functional ->
//! normalized_edp) must keep compiling and producing verified results, so
//! the example's API contract is enforced by the test suite rather than
//! by docs alone.

use sparseflex::formats::{DataType, SparseMatrix};
use sparseflex::kernels::gemm::gemm_naive;
use sparseflex::sage::SageWorkload;
use sparseflex::system::{FlexSystem, PlanDiscipline};
use sparseflex::workloads::synth::random_matrix;

/// The quickstart scenario end-to-end, on a slightly smaller problem so
/// the cycle-accurate simulator stays fast in debug builds.
#[test]
fn quickstart_path_end_to_end() {
    let a = random_matrix(48, 64, 120, 1);
    let b = random_matrix(64, 32, 120, 2);
    assert_eq!(a.nnz(), 120);
    assert_eq!(b.nnz(), 120);

    let w = SageWorkload::spgemm(
        a.rows(),
        a.cols(),
        b.cols(),
        a.nnz() as u64,
        b.nnz() as u64,
        DataType::Fp32,
    );
    let mut system = FlexSystem::default();
    system.sage.accel.num_pes = 16;
    system.sage.accel.pe_buffer_elems = 32;

    // 1. SAGE searches the MCF x ACF space.
    let plan = system.plan(&w);
    assert!(
        plan.candidates > 0,
        "SAGE searched an empty candidate space"
    );
    assert!(plan.evaluation.compute_cycles > 0.0);
    assert!(plan.evaluation.total_energy() > 0.0);
    assert!(
        (0.0..=1.0).contains(&plan.evaluation.utilization),
        "utilization {} out of range",
        plan.evaluation.utilization
    );

    // 2-4. Encode in MCF, convert through MINT, execute on the simulator.
    let run = system
        .run_functional(&a, &b, &w)
        .expect("supported ACF pair");
    assert!(run.sim.cycles.total() > 0);
    assert!(run.sim.counts.macs > 0);

    // The accelerator output must match the software kernel exactly
    // (integer-valued fixtures keep f64 arithmetic exact).
    let expect = gemm_naive(&a.clone().into_dense(), &b.clone().into_dense());
    assert!(
        run.sim.output.approx_eq(&expect, 1e-9),
        "accelerator output mismatch"
    );

    // 5. Baseline-class comparison: this work is the 1.0x reference, so
    // every runnable baseline normalizes to >= ~1.
    let norms = system.normalized_edp(&w);
    assert!(!norms.is_empty(), "no baseline classes reported");
    let runnable = norms.iter().filter(|(_, n)| n.is_some()).count();
    assert!(runnable > 0, "no baseline class could run the workload");
    for (class, norm) in norms {
        if let Some(x) = norm {
            assert!(x >= 0.999, "{class} beats this work ({x}x)");
        }
    }
}

/// The `examples/plan_explain.rs` scenario end-to-end: plan a
/// dense-regime and a hyper-sparse workload through the planner, check
/// the rendered explanation, execute both plans, and confirm the second
/// planning of each shape is served from the bounded plan cache.
#[test]
fn plan_explain_path_end_to_end() {
    let mut sys = FlexSystem::default();
    sys.sage.accel.num_pes = 8;
    sys.sage.accel.pe_buffer_elems = 64;
    // (label fragment, m, k, n, nnz_a) — the example's two regimes,
    // slightly shrunk for debug-build speed.
    for (m, k, n, nnz) in [(32usize, 32usize, 40usize, 800usize), (96, 96, 80, 120)] {
        let a = random_matrix(m, k, nnz, 1);
        let b = random_matrix(k, n, nnz / 2 + 1, 2);
        let w = SageWorkload::spgemm(m, k, n, a.nnz() as u64, b.nnz() as u64, DataType::Fp32);
        let plan = sys
            .planner
            .plan_job(&sys.sage, &a, &b, &w, PlanDiscipline::Pipelined)
            .expect("workload plans");
        let text = plan.explain();
        assert!(text.contains(&format!("SpGEMM {m}x{k}x{n}")), "{text}");
        assert!(text.contains("searched"), "first plan must be a search");
        let run = sys
            .planner
            .execute_plan(&sys.sage, &plan, &a, &b)
            .expect("plan executes");
        let expect = gemm_naive(&a.clone().into_dense(), &b.clone().into_dense());
        assert!(run.output.approx_eq(&expect, 1e-9));
        // Replanning the same shape hits the cache, and explain says so.
        let again = sys
            .planner
            .plan_job(&sys.sage, &a, &b, &w, PlanDiscipline::Pipelined)
            .expect("workload replans");
        assert!(again.from_cache);
        assert!(again.explain().contains("plan-cache hit"));
        assert!(
            again.explain().contains("calibration: generation 0"),
            "plans must explain their calibration generation"
        );
    }
    assert_eq!(sys.planner.cache.len(), 2, "two regimes cached");

    // The example's calibration epilogue: the executed runs fed the
    // calibrator, a refit bumps the generation, and the replanned shape
    // is searched (stale row) with the new generation in its dump.
    assert!(
        sys.planner.calibrator.samples() > 0,
        "executed plans must feed the calibrator"
    );
    sys.planner.calibrator.recalibrate();
    let (m, k, n, nnz) = (32usize, 32usize, 40usize, 800usize);
    let a = random_matrix(m, k, nnz, 1);
    let b = random_matrix(k, n, nnz / 2 + 1, 2);
    let w = SageWorkload::spgemm(m, k, n, a.nnz() as u64, b.nnz() as u64, DataType::Fp32);
    let recal = sys
        .planner
        .plan_job(&sys.sage, &a, &b, &w, PlanDiscipline::Pipelined)
        .expect("workload replans after refit");
    assert!(!recal.from_cache, "refit must invalidate the cached row");
    assert_eq!(recal.calibration_generation, 1);
    assert!(recal.explain().contains("calibration: generation 1"));
}

/// The `examples/custom_format.rs` scenario end-to-end (shrunk for
/// debug-build speed): compose a non-preset descriptor, size it, encode
/// it, and run it through the fiber-stream SpMM and the accelerator —
/// both verified against the dense reference.
#[test]
fn custom_format_path_end_to_end() {
    use sparseflex::formats::descriptor::{Level, RankOrder, ValuesLayout};
    use sparseflex::formats::size_model::{descriptor_matrix_bits, MatrixStructure};
    use sparseflex::formats::{CustomMatrix, FormatDescriptor};

    let a = random_matrix(32, 64, 200, 7);
    let b = random_matrix(64, 16, 64 * 16, 8);
    let custom = FormatDescriptor::new(
        RankOrder::RowMajor,
        vec![Level::Bitmask, Level::RunLength { run_bits: 4 }],
        ValuesLayout::Contiguous,
    );
    assert_eq!(custom.to_matrix_format(), None, "must be a non-preset");

    // Sizable by the generic level model.
    let bd = descriptor_matrix_bits(
        &custom,
        &MatrixStructure::analytic(32, 64, a.nnz()),
        DataType::Fp32,
    )
    .unwrap();
    assert!(bd.total() > 0);

    // Fiber-stream SpMM.
    let enc = CustomMatrix::encode(&a, &custom).unwrap();
    let b_dense = b.clone().into_dense();
    let reference = gemm_naive(&a.clone().into_dense(), &b_dense);
    let via_stream =
        sparseflex::kernels::spmm_from_stream(a.rows(), a.cols(), &enc, &b_dense).unwrap();
    assert!(via_stream.approx_eq(&reference, 1e-9));

    // Accelerator end-to-end.
    let mut sys = FlexSystem::default();
    sys.sage.accel.num_pes = 16;
    sys.sage.accel.pe_buffer_elems = 64;
    let run = sys
        .run_custom_mcf(&a, &b, &custom, &FormatDescriptor::dense())
        .unwrap();
    assert!(run.output().approx_eq(&reference, 1e-9));
}

/// The `examples/serve_demo.rs` scenario end-to-end (shrunk for
/// debug-build speed): three weighted tenants submit wire frames into a
/// running `FlexService`, every result frame decodes, and the printed
/// per-tenant counters add up.
#[test]
fn serve_demo_path_end_to_end() {
    use sparseflex::formats::{MatrixData, MatrixFormat};
    use sparseflex::serve::{wire, FlexService, Priority, ServeConfig, WireJob};

    let mut system = FlexSystem::default();
    system.sage.accel.num_pes = 8;
    system.sage.accel.pe_buffer_elems = 64;
    let service = FlexService::start(
        system,
        ServeConfig {
            workers: 2,
            cache_shards: 8,
            ..ServeConfig::default()
        },
    )
    .expect("service starts");
    service.register_tenant(1, 1);
    service.register_tenant(2, 2);
    service.register_tenant(3, 4);

    let tickets: Vec<_> = (0..12)
        .map(|i| {
            let a = random_matrix(10, 12, 40, 50 + (i % 3) as u64);
            let b = random_matrix(12, 8, 36, 90 + (i % 3) as u64);
            let job = WireJob {
                tenant: (i % 3) as u32 + 1,
                priority: Priority::Normal,
                dtype: DataType::Fp32,
                a: MatrixData::encode(&a, &MatrixFormat::Csr).unwrap(),
                b: MatrixData::encode(&b, &MatrixFormat::Zvc).unwrap(),
            };
            let frame = wire::encode_job(&job).unwrap();
            service.submit_frame(&frame).unwrap()
        })
        .collect();
    for ticket in tickets {
        let outcome = ticket.wait().expect("demo job completes");
        let result = wire::decode_result(&outcome.result_frame).unwrap();
        assert_eq!(result.output.rows(), 10);
        assert_eq!(result.output.cols(), 8);
    }

    let stats = service.stats();
    assert_eq!(stats.jobs_completed, 12);
    assert_eq!(stats.jobs_rejected, 0);
    assert_eq!(stats.cache_shards.len(), 8, "demo runs the sharded cache");
    // The demo's per-tenant table: three registered tenants whose
    // counters cover the whole stream.
    assert_eq!(stats.tenants.len(), 3);
    for t in &stats.tenants {
        assert_eq!(t.submitted, 4);
        assert_eq!(t.completed, 4);
        assert_eq!(t.rejected, 0);
    }
    let weights: Vec<u64> = stats.tenants.iter().map(|t| t.weight).collect();
    assert_eq!(weights, vec![1, 2, 4]);
}

/// The quickstart example itself must stay runnable: `cargo test` builds
/// all examples, and this guards the example's own verification assert
/// by re-running its exact operand sizes through the library path.
#[test]
fn quickstart_operand_sizes_stay_supported() {
    let a = random_matrix(96, 128, 250, 1);
    let b = random_matrix(128, 64, 250, 2);
    let w = SageWorkload::spgemm(96, 128, 64, 250, 250, DataType::Fp32);
    let mut system = FlexSystem::default();
    system.sage.accel.num_pes = 32;
    system.sage.accel.pe_buffer_elems = 64;
    let run = system
        .run_functional(&a, &b, &w)
        .expect("supported ACF pair");
    let expect = gemm_naive(&a.clone().into_dense(), &b.clone().into_dense());
    assert!(run.sim.output.approx_eq(&expect, 1e-9));
}
